// End-to-end kernel tests: the same application code must produce the
// sequential-reference answer on both runtimes (the paper's "trivial
// porting" claim, verified numerically).
#include <gtest/gtest.h>

#include <memory>

#include "apps/bfs.hpp"
#include "apps/reduction.hpp"
#include "apps/jacobi.hpp"
#include "apps/md.hpp"
#include "apps/matmul.hpp"
#include "apps/microbench.hpp"
#include "core/samhita_runtime.hpp"
#include "smp/smp_runtime.hpp"

namespace sam::apps {
namespace {

std::unique_ptr<rt::Runtime> make_runtime(const std::string& kind) {
  if (kind == "samhita") return std::make_unique<core::SamhitaRuntime>();
  return std::make_unique<smp::SmpRuntime>();
}

class KernelOnRuntime : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(BothRuntimes, KernelOnRuntime,
                         ::testing::Values("pthreads", "samhita"),
                         [](const auto& info) { return info.param; });

TEST_P(KernelOnRuntime, MicrobenchLocalMatchesReference) {
  MicrobenchParams p;
  p.threads = 4;
  p.N = 3;
  p.M = 2;
  p.S = 2;
  p.B = 64;
  p.alloc = MicrobenchAlloc::kLocal;
  auto runtime = make_runtime(GetParam());
  const auto result = run_microbench(*runtime, p);
  const double expect = microbench_reference_gsum(p);
  EXPECT_NEAR(result.gsum, expect, std::abs(expect) * 1e-12);
  EXPECT_GT(result.mean_compute_seconds, 0.0);
  EXPECT_GT(result.mean_sync_seconds, 0.0);
  EXPECT_GE(result.elapsed_seconds,
            result.mean_compute_seconds);  // elapsed includes sync
}

TEST_P(KernelOnRuntime, MicrobenchGlobalMatchesReference) {
  MicrobenchParams p;
  p.threads = 4;
  p.N = 2;
  p.M = 3;
  p.S = 2;
  p.B = 64;
  p.alloc = MicrobenchAlloc::kGlobal;
  auto runtime = make_runtime(GetParam());
  const auto result = run_microbench(*runtime, p);
  const double expect = microbench_reference_gsum(p);
  EXPECT_NEAR(result.gsum, expect, std::abs(expect) * 1e-12);
}

TEST_P(KernelOnRuntime, MicrobenchStridedMatchesReference) {
  MicrobenchParams p;
  p.threads = 4;
  p.N = 2;
  p.M = 2;
  p.S = 3;
  p.B = 64;
  p.alloc = MicrobenchAlloc::kGlobalStrided;
  auto runtime = make_runtime(GetParam());
  const auto result = run_microbench(*runtime, p);
  const double expect = microbench_reference_gsum(p);
  EXPECT_NEAR(result.gsum, expect, std::abs(expect) * 1e-12);
}

TEST_P(KernelOnRuntime, JacobiMatchesReference) {
  JacobiParams p;
  p.threads = 4;
  p.n = 32;
  p.iterations = 5;
  auto runtime = make_runtime(GetParam());
  const auto result = run_jacobi(*runtime, p);
  const double expect = jacobi_reference_residual(p);
  EXPECT_NEAR(result.final_residual, expect, std::abs(expect) * 1e-9 + 1e-15);
}

TEST_P(KernelOnRuntime, JacobiSingleThreadMatchesReference) {
  JacobiParams p;
  p.threads = 1;
  p.n = 24;
  p.iterations = 4;
  auto runtime = make_runtime(GetParam());
  const auto result = run_jacobi(*runtime, p);
  const double expect = jacobi_reference_residual(p);
  EXPECT_NEAR(result.final_residual, expect, std::abs(expect) * 1e-12 + 1e-18);
}

TEST_P(KernelOnRuntime, MdMatchesReference) {
  MdParams p;
  p.threads = 4;
  p.particles = 32;
  p.steps = 3;
  auto runtime = make_runtime(GetParam());
  const auto result = run_md(*runtime, p);
  const auto expect = md_reference(p);
  EXPECT_NEAR(result.potential, expect.potential, std::abs(expect.potential) * 1e-9);
  EXPECT_NEAR(result.kinetic, expect.kinetic, std::abs(expect.kinetic) * 1e-6 + 1e-18);
}

TEST_P(KernelOnRuntime, MdUnevenPartitionMatchesReference) {
  MdParams p;
  p.threads = 3;  // particles % threads != 0
  p.particles = 31;
  p.steps = 2;
  auto runtime = make_runtime(GetParam());
  const auto result = run_md(*runtime, p);
  const auto expect = md_reference(p);
  EXPECT_NEAR(result.potential, expect.potential, std::abs(expect.potential) * 1e-9);
}

TEST_P(KernelOnRuntime, MatmulMatchesReference) {
  MatmulParams p;
  p.threads = 4;
  p.n = 24;
  auto runtime = make_runtime(GetParam());
  const auto result = run_matmul(*runtime, p);
  const double expect = matmul_reference_checksum(p);
  EXPECT_NEAR(result.checksum, expect, std::abs(expect) * 1e-9);
}

TEST(MatmulShape, ReadMostlyReplicationHasNoInvalidations) {
  // B is read by everyone and written by no one after init: the DSM must
  // replicate it without any steady-state invalidation traffic.
  MatmulParams p;
  p.threads = 4;
  p.n = 32;
  core::SamhitaRuntime runtime;
  run_matmul(runtime, p);
  std::uint64_t invalidations = 0;
  std::uint64_t hits = 0, misses = 0;
  for (unsigned t = 0; t < 4; ++t) {
    invalidations += runtime.metrics(t).invalidations;
    hits += runtime.metrics(t).cache_hits;
    misses += runtime.metrics(t).cache_misses;
  }
  // A handful of invalidations are expected from the falsely-shared output
  // matrix C at the final barrier; the read-shared input B must contribute
  // none (bounded by one C line per thread).
  EXPECT_LE(invalidations, 4u);
  EXPECT_GT(hits, 50 * misses);  // touch-once, hit-forever
}

TEST_P(KernelOnRuntime, BfsMatchesReference) {
  BfsParams p;
  p.threads = 4;
  p.vertices = 256;
  p.avg_degree = 6;
  p.seed = 3;
  auto runtime = make_runtime(GetParam());
  const auto result = run_bfs(*runtime, p);
  const auto expect = bfs_reference(p);
  EXPECT_EQ(result.reached, expect.reached);
  EXPECT_EQ(result.distance_sum, expect.distance_sum);
  EXPECT_EQ(result.levels, expect.levels);
  EXPECT_EQ(result.reached, p.vertices);  // ring backbone: connected
}

TEST_P(KernelOnRuntime, BfsSingleThreadMatchesReference) {
  BfsParams p;
  p.threads = 1;
  p.vertices = 128;
  p.avg_degree = 4;
  p.seed = 9;
  auto runtime = make_runtime(GetParam());
  const auto result = run_bfs(*runtime, p);
  const auto expect = bfs_reference(p);
  EXPECT_EQ(result.distance_sum, expect.distance_sum);
}

TEST(BfsGraph, GeneratorIsDeterministicAndWellFormed) {
  const auto g1 = make_random_graph(64, 8, 5);
  const auto g2 = make_random_graph(64, 8, 5);
  EXPECT_EQ(g1.edges, g2.edges);
  EXPECT_EQ(g1.offsets, g2.offsets);
  ASSERT_EQ(g1.offsets.size(), 65u);
  EXPECT_EQ(g1.offsets.front(), 0u);
  EXPECT_EQ(g1.offsets.back(), g1.edges.size());
  for (std::size_t v = 0; v < 64; ++v) {
    EXPECT_LE(g1.offsets[v], g1.offsets[v + 1]);
    for (std::uint32_t e = g1.offsets[v]; e < g1.offsets[v + 1]; ++e) {
      EXPECT_LT(g1.edges[e], 64u);
    }
  }
}

class ReductionStrategyCase
    : public ::testing::TestWithParam<std::tuple<std::string, ReductionStrategy>> {};

INSTANTIATE_TEST_SUITE_P(
    Matrix, ReductionStrategyCase,
    ::testing::Combine(::testing::Values("pthreads", "samhita"),
                       ::testing::Values(ReductionStrategy::kMutex,
                                         ReductionStrategy::kTree,
                                         ReductionStrategy::kPaddedTree)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) + "_" + to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST_P(ReductionStrategyCase, MatchesReference) {
  ReductionParams p;
  p.threads = 5;  // non-power-of-two exercises the ragged tree
  p.items_per_thread = 257;
  p.rounds = 3;
  p.strategy = std::get<1>(GetParam());
  auto runtime = make_runtime(std::get<0>(GetParam()));
  const auto result = run_reduction(*runtime, p);
  const double expect = reduction_reference(p);
  EXPECT_NEAR(result.value, expect, std::abs(expect) * 1e-12);
}

TEST(ReductionShape, DenseTreeFalseSharesAndLosesToMutexOnDsm) {
  // The classic tree reduction's dense partials array false-shares at page
  // granularity: every combine round invalidates and refetches, negating
  // the log2(P) advantage. RegC's fine-grain update sets keep the naive
  // mutex reduction free of page thrash — so the mutex version wins.
  ReductionParams p;
  p.threads = 16;
  p.items_per_thread = 512;
  p.rounds = 5;
  auto run = [&](ReductionStrategy s) {
    p.strategy = s;
    core::SamhitaRuntime rt;
    return run_reduction(rt, p);
  };
  const auto mutex_r = run(ReductionStrategy::kMutex);
  const auto tree_r = run(ReductionStrategy::kTree);
  const auto padded_r = run(ReductionStrategy::kPaddedTree);
  EXPECT_NEAR(mutex_r.value, tree_r.value, std::abs(tree_r.value) * 1e-12);
  EXPECT_NEAR(mutex_r.value, padded_r.value, std::abs(padded_r.value) * 1e-12);
  EXPECT_LT(mutex_r.elapsed_seconds, tree_r.elapsed_seconds);
  EXPECT_LT(padded_r.elapsed_seconds, tree_r.elapsed_seconds);
}

TEST_P(KernelOnRuntime, PageGrainModeRunsKernelsCorrectly) {
  // The A6 fallback protocol must run the real kernels, not just unit mixes.
  if (GetParam() != "samhita") GTEST_SKIP();
  core::SamhitaConfig cfg;
  cfg.finegrain_updates = false;
  {
    core::SamhitaRuntime rt(cfg);
    JacobiParams p;
    p.threads = 4;
    p.n = 24;
    p.iterations = 3;
    const auto r = run_jacobi(rt, p);
    EXPECT_NEAR(r.final_residual, jacobi_reference_residual(p),
                std::abs(jacobi_reference_residual(p)) * 1e-9 + 1e-15);
  }
  {
    core::SamhitaRuntime rt(cfg);
    MdParams p;
    p.threads = 3;
    p.particles = 24;
    p.steps = 2;
    const auto r = run_md(rt, p);
    const auto e = md_reference(p);
    EXPECT_NEAR(r.potential, e.potential, std::abs(e.potential) * 1e-9);
  }
}

TEST(MicrobenchAllocNames, RoundTrip) {
  EXPECT_STREQ(to_string(MicrobenchAlloc::kLocal), "local");
  EXPECT_EQ(microbench_alloc_from_string("strided"), MicrobenchAlloc::kGlobalStrided);
  EXPECT_ANY_THROW(microbench_alloc_from_string("bogus"));
}

TEST(MicrobenchShape, SamhitaLocalHasNoSteadyStateMisses) {
  // The headline Fig. 3 property: with local allocation there is no false
  // sharing, so after the first (cold) epoch the caches stay valid.
  MicrobenchParams p;
  p.threads = 4;
  p.N = 8;
  p.M = 1;
  p.S = 2;
  p.B = 256;
  p.alloc = MicrobenchAlloc::kLocal;
  core::SamhitaRuntime runtime;
  run_microbench(runtime, p);
  std::uint64_t invalidations = 0;
  for (unsigned t = 0; t < 4; ++t) {
    invalidations += runtime.metrics(t).invalidations;
  }
  EXPECT_EQ(invalidations, 0u) << "local allocation must not false-share";
}

TEST(MicrobenchShape, StridedInvalidatesEveryEpoch) {
  MicrobenchParams p;
  p.threads = 4;
  p.N = 8;
  p.M = 1;
  p.S = 2;
  p.B = 256;
  p.alloc = MicrobenchAlloc::kGlobalStrided;
  core::SamhitaRuntime runtime;
  run_microbench(runtime, p);
  std::uint64_t invalidations = 0;
  for (unsigned t = 0; t < 4; ++t) {
    invalidations += runtime.metrics(t).invalidations;
  }
  EXPECT_GT(invalidations, 8u) << "strided access must thrash shared lines";
}

}  // namespace
}  // namespace sam::apps
