// Property-based tests: randomized sweeps over protocol invariants using
// parameterized gtest with seeded, reproducible RNG.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/samhita_runtime.hpp"
#include "regc/diff.hpp"
#include "regc/store_log.hpp"
#include "sim/coop_scheduler.hpp"
#include "sim/resource.hpp"
#include "util/rng.hpp"

namespace sam {
namespace {

// ---------------------------------------------------------------------------
// Diff properties
// ---------------------------------------------------------------------------

class DiffProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, DiffProperty, ::testing::Range<std::uint64_t>(1, 9));

TEST_P(DiffProperty, ApplyToTwinReproducesCurrent) {
  // forall buffers: apply(diff(twin, cur)) onto twin == cur.
  util::SplitMix64 rng(GetParam());
  std::vector<std::byte> twin(mem::kPageSize);
  for (auto& b : twin) b = static_cast<std::byte>(rng.next_below(256));
  auto cur = twin;
  const std::size_t mutations = 1 + rng.next_below(200);
  for (std::size_t i = 0; i < mutations; ++i) {
    cur[rng.next_below(cur.size())] = static_cast<std::byte>(rng.next_below(256));
  }
  const regc::Diff d = regc::Diff::between(0, twin, cur);
  std::vector<std::byte> patched = twin;
  d.apply_to_buffer(0, patched);
  EXPECT_EQ(patched, cur);
}

TEST_P(DiffProperty, WireBytesBoundedByPageCost) {
  util::SplitMix64 rng(GetParam() * 77);
  std::vector<std::byte> twin(mem::kPageSize, std::byte{0});
  auto cur = twin;
  for (std::size_t i = 0; i < 50; ++i) {
    cur[rng.next_below(cur.size())] = std::byte{1};
  }
  const regc::Diff d = regc::Diff::between(0, twin, cur);
  // A diff of k scattered bytes must beat shipping the whole page once the
  // page is mostly clean (that is the point of diffing).
  EXPECT_LT(d.wire_bytes(), mem::kPageSize);
  EXPECT_GE(d.payload_bytes(), 1u);
}

TEST_P(DiffProperty, DisjointRandomWritersCommute) {
  util::SplitMix64 rng(GetParam() * 131);
  std::vector<std::byte> base(mem::kPageSize, std::byte{0});
  // Writer A mutates even 64-byte blocks, writer B odd blocks: disjoint.
  auto a = base, b = base;
  for (std::size_t blk = 0; blk < mem::kPageSize / 64; ++blk) {
    auto& dst = (blk % 2 == 0) ? a : b;
    if (rng.next_below(2)) {
      for (std::size_t i = 0; i < 64; ++i) {
        dst[blk * 64 + i] = static_cast<std::byte>(rng.next_below(256));
      }
    }
  }
  const regc::Diff da = regc::Diff::between(0, base, a);
  const regc::Diff db = regc::Diff::between(0, base, b);
  ASSERT_TRUE(regc::Diff::disjoint(da, db));
  auto ab = base, ba = base;
  da.apply_to_buffer(0, ab);
  db.apply_to_buffer(0, ab);
  db.apply_to_buffer(0, ba);
  da.apply_to_buffer(0, ba);
  EXPECT_EQ(ab, ba);
}

// ---------------------------------------------------------------------------
// StoreLog properties
// ---------------------------------------------------------------------------

class StoreLogProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, StoreLogProperty, ::testing::Range<std::uint64_t>(1, 7));

TEST_P(StoreLogProperty, CoalescedCoversExactlyTheRecordedBytes) {
  util::SplitMix64 rng(GetParam());
  regc::StoreLog log;
  std::vector<bool> expected(4096, false);
  const std::size_t n = 1 + rng.next_below(300);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t addr = rng.next_below(4000);
    const std::size_t size = 1 + rng.next_below(64);
    log.record(addr, std::min(size, expected.size() - addr));
    for (std::size_t k = addr; k < std::min(addr + size, expected.size()); ++k) {
      expected[k] = true;
    }
  }
  std::vector<bool> covered(4096, false);
  for (const auto& r : log.coalesced()) {
    for (std::size_t k = r.addr; k < r.addr + r.size; ++k) covered[k] = true;
  }
  EXPECT_EQ(covered, expected);
  // Ranges are sorted and disjoint.
  const auto ranges = log.coalesced();
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_GT(ranges[i].addr, ranges[i - 1].addr + ranges[i - 1].size);
  }
}

// ---------------------------------------------------------------------------
// Resource properties
// ---------------------------------------------------------------------------

class ResourceProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ResourceProperty, ::testing::Range<std::uint64_t>(1, 6));

TEST_P(ResourceProperty, CompletionsMonotoneForOrderedArrivals) {
  util::SplitMix64 rng(GetParam());
  sim::Resource r("srv");
  SimTime arrival = 0;
  SimTime prev_done = 0;
  SimDuration total_service = 0;
  for (int i = 0; i < 500; ++i) {
    arrival += rng.next_below(100);
    const SimDuration service = 1 + rng.next_below(50);
    total_service += service;
    const SimTime done = r.serve(arrival, service);
    EXPECT_GE(done, arrival + service);
    EXPECT_GE(done, prev_done);  // FIFO: completions are ordered
    prev_done = done;
  }
  EXPECT_EQ(r.busy_time(), total_service);
  EXPECT_GE(prev_done, total_service);  // can't finish before the work exists
}

// ---------------------------------------------------------------------------
// Scheduler properties
// ---------------------------------------------------------------------------

class SchedulerProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty, ::testing::Range<std::uint64_t>(1, 6));

TEST_P(SchedulerProperty, ResumesAlwaysInGlobalTimeOrder) {
  // Record the clock at every resume of every thread: the sequence observed
  // by the scheduler must be globally nondecreasing.
  sim::CoopScheduler sched;
  std::vector<SimTime> resume_times;
  const std::uint64_t seed = GetParam();
  for (int t = 0; t < 6; ++t) {
    sched.spawn("t" + std::to_string(t), 0, [&sched, &resume_times, seed, t] {
      util::SplitMix64 rng(seed * 1000 + t);
      auto* me = sim::CoopScheduler::current();
      for (int k = 0; k < 50; ++k) {
        me->advance(1 + rng.next_below(1000));
        sched.yield_current();
        resume_times.push_back(me->clock());
      }
    });
  }
  sched.run();
  ASSERT_EQ(resume_times.size(), 300u);
  for (std::size_t i = 1; i < resume_times.size(); ++i) {
    EXPECT_GE(resume_times[i], resume_times[i - 1]) << "at resume " << i;
  }
}

// ---------------------------------------------------------------------------
// Full-runtime randomized consistency check
// ---------------------------------------------------------------------------

class RandomSharingProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSharingProperty, ::testing::Range<std::uint64_t>(1, 5));

TEST_P(RandomSharingProperty, RandomDisjointWritesAllSurviveBarriers) {
  // Threads write random disjoint slots of one shared array between
  // barriers; every write must be visible to every thread afterwards.
  const std::uint64_t seed = GetParam();
  core::SamhitaRuntime runtime;
  const auto b = runtime.create_barrier(4);
  constexpr std::size_t kSlots = 1024;  // 8 KiB: two pages, heavy sharing
  rt::Addr base = 0;
  bool all_ok = true;
  runtime.parallel_run(4, [&](rt::ThreadCtx& ctx) {
    const std::uint32_t me = ctx.index();
    if (me == 0) base = ctx.alloc(kSlots * sizeof(double));
    ctx.barrier(b);
    std::vector<double> expected(kSlots, 0.0);
    util::SplitMix64 common(seed);  // same stream in every thread
    for (int epoch = 1; epoch <= 6; ++epoch) {
      // Deterministic random permutation assigns slots to threads.
      for (std::size_t s = 0; s < kSlots; ++s) {
        const std::uint32_t owner = static_cast<std::uint32_t>(common.next_below(4));
        const double value = epoch * 10000.0 + s;
        if (owner == me) {
          ctx.write<double>(base + s * sizeof(double), value);
        }
        expected[s] = value;
      }
      ctx.barrier(b);
      for (std::size_t s = 0; s < kSlots; s += 17) {
        if (ctx.read<double>(base + s * sizeof(double)) != expected[s]) {
          all_ok = false;
        }
      }
      ctx.barrier(b);
    }
  });
  EXPECT_TRUE(all_ok);
  // Authoritative memory agrees too.
  const auto final = runtime.read_global_array<double>(base, kSlots);
  util::SplitMix64 common(seed);
  std::vector<double> expected(kSlots);
  for (int epoch = 1; epoch <= 6; ++epoch) {
    for (std::size_t s = 0; s < kSlots; ++s) {
      common.next_below(4);
      expected[s] = epoch * 10000.0 + s;
    }
  }
  for (std::size_t s = 0; s < kSlots; ++s) {
    EXPECT_DOUBLE_EQ(final[s], expected[s]) << "slot " << s;
  }
}

TEST_P(RandomSharingProperty, LockedRandomIncrementsSerialize) {
  const std::uint64_t seed = GetParam();
  core::SamhitaRuntime runtime;
  const auto m = runtime.create_mutex();
  const auto b = runtime.create_barrier(6);
  rt::Addr cells = 0;
  constexpr std::size_t kCells = 16;
  std::map<std::size_t, double> expected_total;
  runtime.parallel_run(6, [&](rt::ThreadCtx& ctx) {
    if (ctx.index() == 0) {
      cells = ctx.alloc(kCells * sizeof(double));
      for (std::size_t c = 0; c < kCells; ++c) {
        ctx.write<double>(cells + c * sizeof(double), 0.0);
      }
    }
    ctx.barrier(b);
    util::SplitMix64 rng(seed * 100 + ctx.index());
    for (int i = 0; i < 40; ++i) {
      const std::size_t c = rng.next_below(kCells);
      const double inc = 1.0 + static_cast<double>(rng.next_below(5));
      ctx.lock(m);
      const double v = ctx.read<double>(cells + c * sizeof(double));
      ctx.write<double>(cells + c * sizeof(double), v + inc);
      ctx.unlock(m);
    }
    ctx.barrier(b);
  });
  // Reference: replay each thread's stream sequentially.
  std::vector<double> expect(kCells, 0.0);
  for (unsigned t = 0; t < 6; ++t) {
    util::SplitMix64 rng(seed * 100 + t);
    for (int i = 0; i < 40; ++i) {
      const std::size_t c = rng.next_below(kCells);
      expect[c] += 1.0 + static_cast<double>(rng.next_below(5));
    }
  }
  const auto final = runtime.read_global_array<double>(cells, kCells);
  for (std::size_t c = 0; c < kCells; ++c) {
    EXPECT_DOUBLE_EQ(final[c], expect[c]) << "cell " << c;
  }
}

}  // namespace
}  // namespace sam
