// Unit tests for the three-strategy Samhita allocator.
#include <gtest/gtest.h>

#include <vector>

#include "core/sam_allocator.hpp"
#include "util/expect.hpp"

namespace sam::core {
namespace {

struct AllocFixture {
  SamhitaConfig cfg;
  mem::GlobalAddressSpace gas;
  SamAllocator alloc;

  AllocFixture() : gas(cfg.address_space_bytes, 2), alloc(&cfg, &gas) {}
};

TEST(SamAllocator, SmallGoesToArenaWithoutManager) {
  AllocFixture f;
  AllocOutcome o1, o2;
  const auto a = f.alloc.alloc(0, 64, o1);
  const auto b = f.alloc.alloc(0, 64, o2);
  EXPECT_EQ(o1.strategy, AllocOutcome::Strategy::kArena);
  EXPECT_EQ(o1.manager_rpcs, 1u);  // first allocation refills the arena
  EXPECT_TRUE(o1.arena_refilled);
  EXPECT_EQ(o2.manager_rpcs, 0u);  // subsequent ones are purely local
  EXPECT_NE(a, b);
}

TEST(SamAllocator, ArenaAllocationsOfDifferentThreadsNeverShareALine) {
  AllocFixture f;
  AllocOutcome o;
  const auto a = f.alloc.alloc(0, 256, o);
  const auto b = f.alloc.alloc(1, 256, o);
  const auto line = [&](mem::GAddr x) { return x / f.cfg.line_bytes(); };
  EXPECT_NE(line(a), line(b));
  EXPECT_NE(line(a + 255), line(b));
}

TEST(SamAllocator, MediumGoesToZoneLineAligned) {
  AllocFixture f;
  AllocOutcome o;
  const auto a = f.alloc.alloc(0, f.cfg.arena_threshold, o);
  EXPECT_EQ(o.strategy, AllocOutcome::Strategy::kZone);
  EXPECT_EQ(o.manager_rpcs, 1u);
  EXPECT_EQ(a % f.cfg.line_bytes(), 0u);
  const auto b = f.alloc.alloc(1, f.cfg.arena_threshold, o);
  EXPECT_EQ(b % f.cfg.line_bytes(), 0u);
  EXPECT_NE(a / f.cfg.line_bytes(), b / f.cfg.line_bytes());
}

TEST(SamAllocator, LargeStripesAcrossServers) {
  AllocFixture f;
  AllocOutcome o;
  const auto a = f.alloc.alloc(0, f.cfg.stripe_threshold * 2, o);
  EXPECT_EQ(o.strategy, AllocOutcome::Strategy::kStriped);
  // Stripe units alternate between the two servers.
  const mem::PageId first = mem::page_of(a);
  const std::uint64_t stripe_pages = f.cfg.stripe_bytes / mem::kPageSize;
  const auto s0 = f.gas.home(first);
  const auto s1 = f.gas.home(first + stripe_pages);
  const auto s2 = f.gas.home(first + 2 * stripe_pages);
  EXPECT_NE(s0, s1);
  EXPECT_EQ(s0, s2);
}

TEST(SamAllocator, AllocationsNeverOverlap) {
  AllocFixture f;
  AllocOutcome o;
  std::vector<std::pair<mem::GAddr, std::size_t>> allocs;
  const std::size_t sizes[] = {8, 100, 4096, 40000, 1 << 20, 64, (1 << 21) + 13};
  for (unsigned t = 0; t < 4; ++t) {
    for (std::size_t s : sizes) {
      allocs.emplace_back(f.alloc.alloc(t, s, o), s);
    }
  }
  for (std::size_t i = 0; i < allocs.size(); ++i) {
    for (std::size_t j = i + 1; j < allocs.size(); ++j) {
      const auto [ai, si] = allocs[i];
      const auto [aj, sj] = allocs[j];
      EXPECT_TRUE(ai + si <= aj || aj + sj <= ai)
          << "overlap between allocation " << i << " and " << j;
    }
  }
}

TEST(SamAllocator, EveryAllocatedPageHasAHome) {
  AllocFixture f;
  AllocOutcome o;
  const std::size_t sizes[] = {8, 5000, 1 << 20, 3 << 20};
  for (std::size_t s : sizes) {
    const auto a = f.alloc.alloc(0, s, o);
    for (mem::PageId p = mem::page_of(a); p <= mem::page_of(a + s - 1); ++p) {
      EXPECT_TRUE(f.gas.is_assigned(p)) << "page " << p << " of size " << s;
    }
  }
}

TEST(SamAllocator, FreeAndLiveness) {
  AllocFixture f;
  AllocOutcome o;
  const auto a = f.alloc.alloc(0, 128, o);
  EXPECT_TRUE(f.alloc.is_live(a));
  EXPECT_EQ(f.alloc.allocation_size(a), 128u);
  f.alloc.free(0, a);
  EXPECT_FALSE(f.alloc.is_live(a));
  EXPECT_THROW(f.alloc.free(0, a), util::ContractViolation);
  EXPECT_THROW(f.alloc.allocation_size(a), util::ContractViolation);
}

TEST(SamAllocator, ZeroBytesRejected) {
  AllocFixture f;
  AllocOutcome o;
  EXPECT_THROW(f.alloc.alloc(0, 0, o), util::ContractViolation);
}

TEST(SamAllocator, AddressSpaceExhaustionDetected) {
  SamhitaConfig cfg;
  cfg.address_space_bytes = 1 << 20;  // 1 MiB: one arena chunk fits exactly
  mem::GlobalAddressSpace gas(cfg.address_space_bytes, 1);
  SamAllocator alloc(&cfg, &gas);
  AllocOutcome o;
  alloc.alloc(0, 64, o);  // consumes the single 1 MiB arena chunk
  EXPECT_THROW(alloc.alloc(1, 64, o), util::ContractViolation);
}

}  // namespace
}  // namespace sam::core
