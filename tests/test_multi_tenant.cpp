// Integration tests for the multi-tenant fabric: co-resident kernels stay
// correct, every metric and trace event is attributable to exactly one
// tenant (per-tenant sums reproduce the global totals), tenants cannot
// allocate outside their address-space partition, and a single configured
// tenant reproduces the plain single-job run.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "apps/jacobi.hpp"
#include "apps/md.hpp"
#include "apps/microbench.hpp"
#include "core/tenant_fabric.hpp"
#include "mem/types.hpp"
#include "obs/run_report.hpp"
#include "sim/trace.hpp"

namespace sam {
namespace {

core::SamhitaConfig three_tenant_config() {
  core::SamhitaConfig cfg;
  cfg.tenants = {{"jacobi", 4, 2.0, 0}, {"micro", 4, 1.0, 0}, {"md", 3, 1.0, 0}};
  cfg.tenant_qos = core::TenantQos::kWfq;
  return cfg;
}

apps::JacobiParams small_jacobi() {
  apps::JacobiParams p;
  p.threads = 4;
  p.n = 32;
  p.iterations = 3;
  return p;
}

apps::MicrobenchParams small_micro() {
  apps::MicrobenchParams p;
  p.threads = 4;
  p.N = 4;
  p.M = 4;
  p.S = 2;
  p.B = 128;
  p.alloc = apps::MicrobenchAlloc::kGlobal;
  return p;
}

apps::MdParams small_md() {
  apps::MdParams p;
  p.threads = 3;
  p.particles = 48;
  p.steps = 2;
  return p;
}

TEST(TenantFabric, CoResidentKernelsMatchSequentialReferences) {
  core::TenantFabric fabric(three_tenant_config());
  const auto jp = small_jacobi();
  const auto mp = small_micro();
  const auto dp = small_md();
  apps::JacobiResult jr;
  apps::MicrobenchResult mr;
  apps::MdResult dr;
  fabric.run({
      [&](rt::Runtime& rt) { jr = apps::run_jacobi(rt, jp); },
      [&](rt::Runtime& rt) { mr = apps::run_microbench(rt, mp); },
      [&](rt::Runtime& rt) { dr = apps::run_md(rt, dp); },
  });
  const double jref = apps::jacobi_reference_residual(jp);
  EXPECT_NEAR(jr.final_residual, jref, std::abs(jref) * 1e-9 + 1e-15);
  const double gref = apps::microbench_reference_gsum(mp);
  EXPECT_NEAR(mr.gsum, gref, std::abs(gref) * 1e-9 + 1e-15);
  const apps::MdReference dref = apps::md_reference(dp);
  EXPECT_NEAR(dr.potential, dref.potential, std::abs(dref.potential) * 1e-9 + 1e-15);
  EXPECT_NEAR(dr.kinetic, dref.kinetic, std::abs(dref.kinetic) * 1e-9 + 1e-15);
  // Each tenant's facade reports exactly its own thread count.
  EXPECT_EQ(fabric.tenant_runtime(0).ran_threads(), 4u);
  EXPECT_EQ(fabric.tenant_runtime(1).ran_threads(), 4u);
  EXPECT_EQ(fabric.tenant_runtime(2).ran_threads(), 3u);
}

// The acceptance bar for attribution: folding the per-tenant registry
// namespaces back together must reproduce the global totals exactly — no
// event double-counted, none dropped.
TEST(TenantFabric, PerTenantCountersSumToGlobalTotals) {
  core::TenantFabric fabric(three_tenant_config());
  const auto jp = small_jacobi();
  const auto mp = small_micro();
  const auto dp = small_md();
  fabric.run({
      [&](rt::Runtime& rt) { (void)apps::run_jacobi(rt, jp); },
      [&](rt::Runtime& rt) { (void)apps::run_microbench(rt, mp); },
      [&](rt::Runtime& rt) { (void)apps::run_md(rt, dp); },
  });
  const obs::Registry reg = obs::collect_registry(fabric.runtime());
  for (const char* key : {"cache.hits", "cache.misses", "cache.invalidations",
                          "regc.diffs_flushed", "bytes.fetched", "bytes.flushed"}) {
    std::uint64_t tenant_sum = 0;
    for (int t = 0; t < 3; ++t) {
      tenant_sum += reg.counter("tenant." + std::to_string(t) + "." + key);
    }
    EXPECT_EQ(tenant_sum, reg.counter(key)) << key;
  }
  std::uint64_t threads = 0;
  for (int t = 0; t < 3; ++t) {
    threads += reg.counter("tenant." + std::to_string(t) + ".threads");
  }
  EXPECT_EQ(threads, fabric.runtime().ran_threads());
}

TEST(TenantFabric, TraceEventsAttributeToExactlyOneTenant) {
  core::SamhitaConfig cfg = three_tenant_config();
  cfg.trace_enabled = true;
  core::TenantFabric fabric(cfg);
  const auto jp = small_jacobi();
  const auto mp = small_micro();
  const auto dp = small_md();
  fabric.run({
      [&](rt::Runtime& rt) { (void)apps::run_jacobi(rt, jp); },
      [&](rt::Runtime& rt) { (void)apps::run_microbench(rt, mp); },
      [&](rt::Runtime& rt) { (void)apps::run_md(rt, dp); },
  });
  const core::SamhitaConfig& rc = fabric.runtime().config();
  const sim::TraceBuffer& trace = fabric.runtime().trace();
  std::vector<std::uint64_t> per_tenant(3, 0);
  for (const sim::TraceEvent& e : trace.snapshot()) {
    ASSERT_LT(e.tenant, 3u);
    // Protocol events are recorded on the acting compute thread: the
    // event's tenant must be the thread's owner.
    EXPECT_EQ(e.tenant, rc.tenant_of_thread(e.thread));
    ++per_tenant[e.tenant];
  }
  // Every tenant left a footprint, and the per-tenant counts partition the
  // total (each event owned by exactly one tenant).
  std::uint64_t total = 0;
  for (int t = 0; t < 3; ++t) {
    EXPECT_GT(per_tenant[t], 0u) << "tenant " << t << " recorded no events";
    total += per_tenant[t];
  }
  EXPECT_EQ(total, trace.snapshot().size());
}

TEST(TenantFabric, RunReportCarriesPerTenantSections) {
  core::TenantFabric fabric(three_tenant_config());
  const auto jp = small_jacobi();
  const auto mp = small_micro();
  const auto dp = small_md();
  fabric.run({
      [&](rt::Runtime& rt) { (void)apps::run_jacobi(rt, jp); },
      [&](rt::Runtime& rt) { (void)apps::run_microbench(rt, mp); },
      [&](rt::Runtime& rt) { (void)apps::run_md(rt, dp); },
  });
  std::ostringstream out;
  obs::write_run_report(fabric.runtime(), out, "multi-tenant test");
  const std::string report = out.str();
  EXPECT_NE(report.find("\"tenants\""), std::string::npos);
  for (const char* name : {"\"jacobi\"", "\"micro\"", "\"md\""}) {
    EXPECT_NE(report.find(name), std::string::npos) << name;
  }
  EXPECT_NE(report.find("\"qos\""), std::string::npos);
  EXPECT_NE(report.find("\"wfq\""), std::string::npos);
}

TEST(TenantFabric, AllocationsStayInsideTenantPartition) {
  core::SamhitaConfig cfg;
  cfg.tenants = {{"a", 2, 1.0, 0}, {"b", 2, 1.0, 0}};
  core::TenantFabric fabric(cfg);
  const core::SamhitaConfig& rc = fabric.runtime().config();
  const std::uint64_t part_bytes = rc.tenant_partition_pages() * mem::kPageSize;
  std::vector<std::vector<rt::Addr>> addrs(2);
  const auto driver = [&](int tenant) {
    return [&, tenant](rt::Runtime& rt) {
      rt.parallel_run(2, [&, tenant](rt::ThreadCtx& ctx) {
        // Private, shared and large (striped-strategy) allocations all have
        // to land inside the tenant's own partition.
        addrs[tenant].push_back(ctx.alloc(64));
        addrs[tenant].push_back(ctx.alloc_shared(4096));
        if (ctx.index() == 0) addrs[tenant].push_back(ctx.alloc_shared(1 << 17));
      });
    };
  };
  fabric.run({driver(0), driver(1)});
  for (int t = 0; t < 2; ++t) {
    const std::uint64_t base = rc.tenant_base_page(t) * mem::kPageSize;
    ASSERT_FALSE(addrs[t].empty());
    for (const rt::Addr a : addrs[t]) {
      EXPECT_GE(a, base) << "tenant " << t;
      EXPECT_LT(a, base + part_bytes) << "tenant " << t;
    }
  }
}

// A universe configured with ONE tenant is the degenerate case: the tenant
// owns the whole address space and every thread, so the run must reproduce
// the plain (tenant-free) runtime exactly — same answer, same virtual-time
// metrics.
TEST(TenantFabric, SingleConfiguredTenantMatchesPlainRun) {
  const auto jp = small_jacobi();
  apps::JacobiResult plain;
  {
    core::SamhitaRuntime rt((core::SamhitaConfig()));
    plain = apps::run_jacobi(rt, jp);
  }
  core::SamhitaConfig cfg;
  cfg.tenants = {{"solo", 4, 1.0, 0}};
  core::TenantFabric fabric(cfg);
  apps::JacobiResult tenant;
  fabric.run({[&](rt::Runtime& rt) { tenant = apps::run_jacobi(rt, jp); }});
  EXPECT_EQ(tenant.final_residual, plain.final_residual);
  EXPECT_DOUBLE_EQ(tenant.elapsed_seconds, plain.elapsed_seconds);
  EXPECT_DOUBLE_EQ(tenant.mean_compute_seconds, plain.mean_compute_seconds);
  EXPECT_DOUBLE_EQ(tenant.mean_sync_seconds, plain.mean_sync_seconds);
}

TEST(TenantFabric, RejectsDriverCountMismatch) {
  core::TenantFabric fabric(three_tenant_config());
  EXPECT_ANY_THROW(fabric.run({[](rt::Runtime&) {}}));
}

}  // namespace
}  // namespace sam
