// Golden-metric regression tests: the default RegC policy must reproduce the
// pre-refactor (seed) simulator EXACTLY — same virtual-time buckets, same
// miss counts, same wire bytes, down to the nanosecond. The constants below
// were captured from the seed build (commit d9816f5) with the capture loop
// documented next to each workload; any drift means the engine decomposition
// changed protocol behaviour, which is a bug even if the answers stay right.
//
// These are deliberately exact-equality checks on aggregate counters, not
// EXPECT_NEAR: the simulator is deterministic, so the only tolerance that
// makes sense is zero.
#include <gtest/gtest.h>

#include <cstdint>

#include "apps/jacobi.hpp"
#include "apps/microbench.hpp"
#include "core/samhita_runtime.hpp"

namespace sam {
namespace {

struct Golden {
  const char* tag;
  std::uint64_t compute_ns;
  std::uint64_t lock_ns;
  std::uint64_t barrier_ns;
  std::uint64_t misses;
  std::uint64_t bytes_fetched;
  std::uint64_t bytes_flushed;
  std::uint64_t update_set_bytes;
};

Golden totals_of(const char* tag, const core::SamhitaRuntime& rt) {
  Golden g{tag, 0, 0, 0, 0, 0, 0, 0};
  for (std::uint32_t t = 0; t < rt.ran_threads(); ++t) {
    const core::Metrics& m = rt.metrics(t);
    g.compute_ns += m.compute_ns;
    g.lock_ns += m.sync_lock_ns;
    g.barrier_ns += m.sync_barrier_ns;
    g.misses += m.cache_misses;
    g.bytes_fetched += m.bytes_fetched;
    g.bytes_flushed += m.bytes_flushed;
    g.update_set_bytes += m.update_set_bytes;
  }
  return g;
}

void expect_equal(const Golden& got, const Golden& want) {
  EXPECT_EQ(got.compute_ns, want.compute_ns) << want.tag << " compute_ns";
  EXPECT_EQ(got.lock_ns, want.lock_ns) << want.tag << " sync_lock_ns";
  EXPECT_EQ(got.barrier_ns, want.barrier_ns) << want.tag << " sync_barrier_ns";
  EXPECT_EQ(got.misses, want.misses) << want.tag << " cache_misses";
  EXPECT_EQ(got.bytes_fetched, want.bytes_fetched) << want.tag << " bytes_fetched";
  EXPECT_EQ(got.bytes_flushed, want.bytes_flushed) << want.tag << " bytes_flushed";
  EXPECT_EQ(got.update_set_bytes, want.update_set_bytes)
      << want.tag << " update_set_bytes";
}

apps::MicrobenchParams micro_params(int S, apps::MicrobenchAlloc alloc) {
  apps::MicrobenchParams p;
  p.threads = 8;
  p.N = 10;
  p.M = 100;
  p.S = S;
  p.B = 256;
  p.alloc = alloc;
  return p;
}

// micro --threads=8 --N=10 --M=100 --S=2 --B=256 --alloc=local
TEST(GoldenMetrics, MicroLocalMatchesSeed) {
  core::SamhitaRuntime rt;
  const auto r = apps::run_microbench(rt, micro_params(2, apps::MicrobenchAlloc::kLocal));
  EXPECT_EQ(r.gsum, 12864743.837333623);
  expect_equal(totals_of("micro_local_t8", rt),
               {"micro_local_t8", 8555634ull, 2752365ull, 2443581ull, 7ull, 229376ull,
                0ull, 15360ull});
}

// jacobi --threads=8 --n=64 --iters=5
TEST(GoldenMetrics, JacobiMatchesSeed) {
  core::SamhitaRuntime rt;
  apps::JacobiParams p;
  p.threads = 8;
  p.n = 64;
  p.iterations = 5;
  const auto r = apps::run_jacobi(rt, p);
  EXPECT_EQ(r.final_residual, 0.19386141905108209);
  expect_equal(totals_of("jacobi_n64_t8", rt),
               {"jacobi_n64_t8", 7595420ull, 4049359ull, 6302913ull, 96ull, 2670592ull,
                69150ull, 7680ull});
}

// micro --threads=8 --N=10 --M=100 --B=256 --alloc=strided, stride sweep:
// S=1 shares every line, S=8 is the paper's worst-case strided layout.
TEST(GoldenMetrics, StridedSweepMatchesSeed) {
  const Golden want[] = {
      {"strided_S1_t8", 10030573ull, 4334270ull, 4846375ull, 77ull, 1376256ull,
       387072ull, 15360ull},
      {"strided_S2_t8", 25132502ull, 3030943ull, 7894703ull, 157ull, 2686976ull,
       1152000ull, 15360ull},
      {"strided_S4_t8", 57276825ull, 3209099ull, 10871176ull, 307ull, 5308416ull,
       2681856ull, 15360ull},
      {"strided_S8_t8", 121900815ull, 3589040ull, 17199005ull, 607ull, 10551296ull,
       5849088ull, 15360ull},
  };
  const double gsum[] = {6432371.9186668117, 12864743.837333623, 25729487.674667258,
                         51458975.349334508};
  const int strides[] = {1, 2, 4, 8};
  for (int i = 0; i < 4; ++i) {
    core::SamhitaRuntime rt;
    const auto r = apps::run_microbench(
        rt, micro_params(strides[i], apps::MicrobenchAlloc::kGlobalStrided));
    EXPECT_EQ(r.gsum, gsum[i]) << want[i].tag;
    expect_equal(totals_of(want[i].tag, rt), want[i]);
  }
}

// ---------------------------------------------------------------------------
// eager_rc policy goldens: same workloads under the eager release-consistency
// policy (constants captured from the seed build, commit 14867a8, before the
// manager was sharded). Pins the policy aggregates through the sync-service
// refactor.
// ---------------------------------------------------------------------------

core::SamhitaConfig eager_cfg() {
  core::SamhitaConfig cfg;
  cfg.consistency_policy = core::ConsistencyPolicyKind::kEagerRC;
  return cfg;
}

// micro --threads=8 --N=10 --M=100 --S=2 --B=256 --alloc=local
TEST(GoldenMetrics, EagerRcMicroLocalMatchesSeed) {
  core::SamhitaRuntime rt(eager_cfg());
  const auto r = apps::run_microbench(rt, micro_params(2, apps::MicrobenchAlloc::kLocal));
  EXPECT_EQ(r.gsum, 12864743.837333623);
  expect_equal(totals_of("eager_micro_local_t8", rt),
               {"eager_micro_local_t8", 10082315ull, 16210419ull, 13887362ull, 80ull,
                1425408ull, 886542ull, 0ull});
}

// micro --threads=8 --N=10 --M=100 --S=2 --B=256 --alloc=strided
TEST(GoldenMetrics, EagerRcStridedMatchesSeed) {
  core::SamhitaRuntime rt(eager_cfg());
  const auto r =
      apps::run_microbench(rt, micro_params(2, apps::MicrobenchAlloc::kGlobalStrided));
  EXPECT_EQ(r.gsum, 12864743.837333623);
  expect_equal(totals_of("eager_strided_S2_t8", rt),
               {"eager_strided_S2_t8", 26784633ull, 11768406ull, 13609011ull, 230ull,
                3883008ull, 1209102ull, 0ull});
}

// jacobi --threads=8 --n=64 --iters=5
TEST(GoldenMetrics, EagerRcJacobiMatchesSeed) {
  core::SamhitaRuntime rt(eager_cfg());
  apps::JacobiParams p;
  p.threads = 8;
  p.n = 64;
  p.iterations = 5;
  const auto r = apps::run_jacobi(rt, p);
  EXPECT_EQ(r.final_residual, 0.19386141905108209);
  expect_equal(totals_of("eager_jacobi_n64_t8", rt),
               {"eager_jacobi_n64_t8", 9600062ull, 9236925ull, 9044097ull, 129ull,
                3424256ull, 69523ull, 0ull});
}

}  // namespace
}  // namespace sam
