// Tests for the sam::obs telemetry layer: histogram + registry semantics,
// JSON round-tripping, Chrome trace export, contention / false-sharing
// profiling, and the schema-versioned run report.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "apps/microbench.hpp"
#include "core/report.hpp"
#include "core/samhita_runtime.hpp"
#include "obs/json.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/run_report.hpp"
#include "obs/trace_json.hpp"
#include "sim/resource.hpp"
#include "sim/trace.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace sam {
namespace {

// --- util::Histogram ---------------------------------------------------------

TEST(Histogram, BucketBoundaries) {
  // 8 octaves x 4 sub-buckets: storage is 1 + 7*4 = 29 buckets. Octave o
  // covers [2^(o-1), 2^o) split into 4 equal linear slices.
  util::Histogram h(8, 4);
  EXPECT_EQ(h.octaves(), 8u);
  EXPECT_EQ(h.sub_buckets(), 4u);
  EXPECT_EQ(h.buckets(), 29u);
  EXPECT_DOUBLE_EQ(h.bucket_lower(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_upper(0), 1.0);
  // Octave 1 = [1, 2): sub-buckets at 1, 1.25, 1.5, 1.75.
  EXPECT_DOUBLE_EQ(h.bucket_lower(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_upper(1), 1.25);
  EXPECT_DOUBLE_EQ(h.bucket_lower(4), 1.75);
  EXPECT_DOUBLE_EQ(h.bucket_upper(4), 2.0);
  // Octave 4 = [8, 16): starts at storage index 1 + 3*4 = 13.
  EXPECT_DOUBLE_EQ(h.bucket_lower(13), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_upper(13), 10.0);
  EXPECT_TRUE(std::isinf(h.bucket_upper(28)));
}

TEST(Histogram, AddPlacesSamplesInLogLinearBuckets) {
  util::Histogram h(6, 4);
  h.add(0.5);    // bucket 0
  h.add(1.0);    // octave 1 sub 0: [1, 1.25) -> index 1
  h.add(3.0);    // octave 2 sub 2: [3, 3.5)  -> index 1 + 4 + 2 = 7
  h.add(3.4);    // same sub-bucket
  h.add(100.0);  // beyond 2^5=32: clamps into the last storage bucket
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(7), 2u);
  EXPECT_EQ(h.bucket(h.buckets() - 1), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 107.9);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.mean(), 107.9 / 5.0, 1e-12);
}

TEST(Histogram, NegativeClampsToBucketZero) {
  util::Histogram h(4);
  h.add(-5.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
}

TEST(Histogram, PercentileWithinObservedRange) {
  util::Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  const double p50 = h.percentile(50.0);
  // Log-linear buckets: exact to within the containing sub-bucket, which at
  // the default 16 sub-buckets around 500 is [496, 512).
  EXPECT_GE(p50, 496.0);
  EXPECT_LE(p50, 512.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 1000.0);
}

TEST(Histogram, QuantileErrorBounded) {
  // The p999 claim the KV serving figures rest on: every quantile estimate
  // must land within one sub-bucket of the true order statistic, i.e. a
  // relative error of at most 1/sub_buckets.
  util::SplitMix64 rng(42);
  util::Histogram h;  // default 48 octaves x 16 sub-buckets
  std::vector<double> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    // Heavy-tailed latencies spanning ~6 decades, like virtual-time ns.
    const double x = std::exp(rng.next_double(0.0, 14.0));
    samples.push_back(x);
    h.add(x);
  }
  std::sort(samples.begin(), samples.end());
  const double tol = 1.0 / static_cast<double>(h.sub_buckets());
  for (const double q : {50.0, 90.0, 99.0, 99.9}) {
    const auto rank = static_cast<std::size_t>(
        q / 100.0 * static_cast<double>(samples.size() - 1));
    const double exact = samples[rank];
    const double est = h.percentile(q);
    EXPECT_NEAR(est, exact, exact * (tol + 1e-9)) << "q=" << q;
  }
}

TEST(Histogram, MergeAddsCounts) {
  util::Histogram a(8, 4);
  util::Histogram b(8, 4);
  a.add(2.0);
  b.add(3.0);
  b.add(0.25);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 5.25);
  EXPECT_DOUBLE_EQ(a.min(), 0.25);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
  EXPECT_EQ(a.bucket(5), 1u);  // 2.0: octave 2 sub 0
  EXPECT_EQ(a.bucket(7), 1u);  // 3.0: octave 2 sub 2
}

TEST(Histogram, MergeRejectsMismatchedBuckets) {
  util::Histogram a(8);
  util::Histogram b(16);
  EXPECT_THROW(a.merge(b), util::ContractViolation);
  util::Histogram c(8, 8);
  EXPECT_THROW(a.merge(c), util::ContractViolation);
}

TEST(SampleSet, SumMatchesSamples) {
  util::SampleSet s;
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
  s.add(1.5);
  s.add(2.5);
  s.add(-1.0);
  EXPECT_DOUBLE_EQ(s.sum(), 3.0);
}

// --- obs JSON writer / parser ------------------------------------------------

TEST(Json, WriterEmitsParseableDocument) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.kv("name", "sam\"hita\n");
  w.kv("count", 42);
  w.kv("ratio", 0.5);
  w.kv("ok", true);
  w.key("empty");
  w.null();
  w.key("list");
  w.begin_array();
  w.value(1);
  w.value("two");
  w.begin_object();
  w.kv("nested", 3);
  w.end_object();
  w.end_array();
  w.end_object();
  EXPECT_TRUE(w.done());

  const obs::JsonValue v = obs::json_parse(os.str());
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("name").str, "sam\"hita\n");
  EXPECT_DOUBLE_EQ(v.at("count").number, 42.0);
  EXPECT_DOUBLE_EQ(v.at("ratio").number, 0.5);
  EXPECT_TRUE(v.at("ok").boolean);
  EXPECT_EQ(v.at("empty").type, obs::JsonValue::Type::kNull);
  ASSERT_TRUE(v.at("list").is_array());
  ASSERT_EQ(v.at("list").arr.size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("list").arr[2].at("nested").number, 3.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, WriterNonFiniteBecomesNull) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_array();
  w.value(std::nan(""));
  w.end_array();
  EXPECT_EQ(os.str(), "[null]");
}

TEST(Json, WriterMisuseThrows) {
  {
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.begin_object();
    EXPECT_THROW(w.value(1), util::ContractViolation);  // member needs a key
  }
  {
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.begin_array();
    EXPECT_THROW(w.key("k"), util::ContractViolation);  // keys only in objects
  }
  {
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.value(1);
    EXPECT_THROW(w.value(2), util::ContractViolation);  // one top-level value
  }
}

TEST(Json, ParserRejectsGarbage) {
  EXPECT_THROW(obs::json_parse(""), util::ContractViolation);
  EXPECT_THROW(obs::json_parse("{"), util::ContractViolation);
  EXPECT_THROW(obs::json_parse("[1,]"), util::ContractViolation);
  EXPECT_THROW(obs::json_parse("{\"a\":1} x"), util::ContractViolation);
  EXPECT_THROW(obs::json_parse("nul"), util::ContractViolation);
}

TEST(Json, ParserHandlesEscapes) {
  const obs::JsonValue v = obs::json_parse(R"({"s": "a\tA\\"})");
  EXPECT_EQ(v.at("s").str, "a\tA\\");
}

// --- obs::Registry -----------------------------------------------------------

TEST(Registry, CounterGaugeHistogramSemantics) {
  obs::Registry reg;
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.counter("never"), 0u);

  reg.add_counter("hits");
  reg.add_counter("hits", 4);
  reg.set_counter("abs", 17);
  EXPECT_EQ(reg.counter("hits"), 5u);
  EXPECT_EQ(reg.counter("abs"), 17u);

  reg.set_gauge("util", 0.75);
  EXPECT_DOUBLE_EQ(reg.gauge("util"), 0.75);
  EXPECT_TRUE(reg.has_gauge("util"));
  EXPECT_FALSE(reg.has_gauge("nope"));
  EXPECT_DOUBLE_EQ(reg.gauge("nope"), 0.0);

  reg.histogram("lat", 8).add(3.0);
  reg.histogram("lat").add(5.0);  // second lookup reuses the histogram
  ASSERT_NE(reg.find_histogram("lat"), nullptr);
  EXPECT_EQ(reg.find_histogram("lat")->count(), 2u);
  // 8 octaves, each split 16 ways past octave 0: log-linear storage.
  EXPECT_EQ(reg.find_histogram("lat")->octaves(), 8u);
  EXPECT_EQ(reg.find_histogram("lat")->buckets(),
            1u + 7u * util::Histogram::kDefaultSubBuckets);
  EXPECT_EQ(reg.find_histogram("absent"), nullptr);

  EXPECT_FALSE(reg.empty());
  reg.clear();
  EXPECT_TRUE(reg.empty());
}

TEST(Registry, JsonRoundTrip) {
  obs::Registry reg;
  reg.add_counter("b.count", 2);
  reg.add_counter("a.count", 1);
  reg.set_gauge("g", 1.5);
  reg.histogram("h", 8).add(2.0);

  std::ostringstream os;
  obs::JsonWriter w(os);
  reg.write_json(w);
  const obs::JsonValue v = obs::json_parse(os.str());

  EXPECT_DOUBLE_EQ(v.at("counters").at("a.count").number, 1.0);
  EXPECT_DOUBLE_EQ(v.at("counters").at("b.count").number, 2.0);
  // std::map ordering makes the emission deterministic: a.count first.
  EXPECT_EQ(v.at("counters").obj.front().first, "a.count");
  EXPECT_DOUBLE_EQ(v.at("gauges").at("g").number, 1.5);
  const obs::JsonValue& h = v.at("histograms").at("h");
  EXPECT_DOUBLE_EQ(h.at("count").number, 1.0);
  EXPECT_DOUBLE_EQ(h.at("sum").number, 2.0);
  // Full quantile ladder, including the tail the fault-tolerance work cares
  // about; with one sample every percentile collapses onto it.
  EXPECT_DOUBLE_EQ(h.at("p50").number, 2.0);
  EXPECT_DOUBLE_EQ(h.at("p999").number, 2.0);
  ASSERT_EQ(h.at("buckets").arr.size(), 1u);  // only non-empty buckets emitted
  EXPECT_DOUBLE_EQ(h.at("buckets").arr[0].arr[0].number, 2.0);  // lower bound
  EXPECT_DOUBLE_EQ(h.at("buckets").arr[0].arr[1].number, 1.0);  // count
}

// --- span events -------------------------------------------------------------

TEST(SpanEvents, RecordAndDropWhenFull) {
  sim::TraceBuffer t(2);
  t.set_enabled(true);
  t.record_span(0, 10, 1, sim::SpanCat::kLockWait, 7);
  t.record_span(10, 20, 1, sim::SpanCat::kLockHeld, 7);
  t.record_span(20, 30, 1, sim::SpanCat::kBarrierWait, 0);  // over capacity
  ASSERT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.spans_dropped(), 1u);
  EXPECT_EQ(t.spans()[0].cat, sim::SpanCat::kLockWait);
  EXPECT_EQ(t.spans()[0].object, 7u);
  t.clear();
  EXPECT_TRUE(t.spans().empty());
  EXPECT_EQ(t.spans_dropped(), 0u);
}

TEST(SpanEvents, DisabledRecordsNothing) {
  sim::TraceBuffer t(4);
  t.record_span(0, 1, 0, sim::SpanCat::kServer, 0);
  EXPECT_TRUE(t.spans().empty());
}

TEST(SpanEvents, ResourceMirrorsServiceWindows) {
  sim::TraceBuffer t(16);
  t.set_enabled(true);
  sim::Resource r("svc");
  r.attach_trace(&t, sim::SpanCat::kServer, 3);
  EXPECT_EQ(r.serve(100, 50), 150u);
  EXPECT_EQ(r.serve(100, 10), 160u);  // queued behind the first request
  r.serve(200, 0);                    // zero service: no span
  ASSERT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.spans()[0].begin, 100u);
  EXPECT_EQ(t.spans()[0].end, 150u);
  EXPECT_EQ(t.spans()[0].track, 3u);
  EXPECT_EQ(t.spans()[0].cat, sim::SpanCat::kServer);
  // The second request queues until 150; its span is the service window
  // only, so server tracks show true busy time, not caller wait.
  EXPECT_EQ(t.spans()[1].begin, 150u);
  EXPECT_EQ(t.spans()[1].end, 160u);
}

TEST(SpanEvents, RuntimeRecordsSyncAndServiceSpans) {
  core::SamhitaConfig cfg;
  cfg.trace_enabled = true;
  core::SamhitaRuntime runtime(cfg);
  const auto m = runtime.create_mutex();
  const auto b = runtime.create_barrier(2);
  rt::Addr a = 0;
  runtime.parallel_run(2, [&](rt::ThreadCtx& ctx) {
    if (ctx.index() == 0) a = ctx.alloc_shared(8192);
    ctx.barrier(b);
    for (int i = 0; i < 3; ++i) {
      ctx.lock(m);
      ctx.write<double>(a, ctx.read<double>(a) + 1.0);
      ctx.unlock(m);
    }
    ctx.barrier(b);
  });
  const auto& spans = runtime.trace().spans();
  ASSERT_FALSE(spans.empty());
  auto count_cat = [&](sim::SpanCat cat) {
    return std::count_if(spans.begin(), spans.end(),
                         [cat](const sim::SpanEvent& s) { return s.cat == cat; });
  };
  EXPECT_EQ(count_cat(sim::SpanCat::kLockHeld), 6);     // 2 threads x 3 locks
  EXPECT_EQ(count_cat(sim::SpanCat::kBarrierWait), 4);  // 2 threads x 2 barriers
  EXPECT_GT(count_cat(sim::SpanCat::kLockWait), 0);
  EXPECT_GT(count_cat(sim::SpanCat::kManager), 0);
  EXPECT_GT(count_cat(sim::SpanCat::kServer), 0);
  EXPECT_GT(count_cat(sim::SpanCat::kLink), 0);
  for (const auto& s : spans) {
    EXPECT_GE(s.end, s.begin);
    if (s.cat == sim::SpanCat::kLockWait || s.cat == sim::SpanCat::kLockHeld ||
        s.cat == sim::SpanCat::kBarrierWait) {
      EXPECT_LT(s.track, 2u);
    }
  }
}

// --- Chrome trace export -----------------------------------------------------

TEST(ChromeTrace, ExportParsesBackWithRequiredFields) {
  core::SamhitaConfig cfg;
  cfg.trace_enabled = true;
  core::SamhitaRuntime runtime(cfg);
  apps::MicrobenchParams p;
  p.threads = 2;
  p.N = 2;
  p.M = 4;
  p.alloc = apps::MicrobenchAlloc::kGlobal;
  apps::run_microbench(runtime, p);

  std::ostringstream os;
  obs::write_chrome_trace(runtime, os);
  const obs::JsonValue root = obs::json_parse(os.str());

  ASSERT_TRUE(root.is_object());
  const obs::JsonValue& events = root.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_FALSE(events.arr.empty());

  std::size_t metadata = 0, complete = 0, instant = 0;
  std::size_t flow_starts = 0, flow_steps = 0, flow_finishes = 0;
  for (const obs::JsonValue& e : events.arr) {
    ASSERT_TRUE(e.is_object());
    const std::string& ph = e.at("ph").str;
    ASSERT_NE(e.find("pid"), nullptr);
    if (ph == "M") {
      ++metadata;
      EXPECT_TRUE(e.at("name").str == "process_name" || e.at("name").str == "thread_name");
      continue;
    }
    ASSERT_NE(e.find("tid"), nullptr);
    ASSERT_NE(e.find("ts"), nullptr);
    EXPECT_GE(e.at("ts").number, 0.0);
    if (ph == "X") {
      ++complete;
      EXPECT_GE(e.at("dur").number, 0.0);
      ASSERT_NE(e.at("args").find("trace_id"), nullptr);
    } else if (ph == "i") {
      ++instant;
      EXPECT_EQ(e.at("s").str, "t");
      EXPECT_DOUBLE_EQ(e.at("pid").number, 1.0);  // protocol events: compute pid
      EXPECT_LT(e.at("tid").number, 2.0);
      ASSERT_NE(e.at("args").find("trace_id"), nullptr);
    } else if (ph == "s" || ph == "t" || ph == "f") {
      // Flow events stitching causal chains across tracks.
      EXPECT_EQ(e.at("cat").str, "flow");
      EXPECT_GT(e.at("id").number, 0.0);
      if (ph == "s") ++flow_starts;
      if (ph == "t") ++flow_steps;
      if (ph == "f") {
        ++flow_finishes;
        EXPECT_EQ(e.at("bp").str, "e");  // bind to the enclosing slice
      }
    } else {
      FAIL() << "unexpected phase: " << ph;
    }
  }
  EXPECT_GT(metadata, 0u);
  EXPECT_GT(complete, 0u);
  EXPECT_GT(instant, 0u);
  // A traced run with demand misses must produce connected chains, and every
  // started flow must terminate.
  EXPECT_GT(flow_starts, 0u);
  EXPECT_EQ(flow_starts, flow_finishes);
  EXPECT_GT(flow_steps, 0u);
  EXPECT_DOUBLE_EQ(root.at("otherData").at("events_recorded").number,
                   static_cast<double>(runtime.trace().total_recorded()));
}

// --- profiler ----------------------------------------------------------------

TEST(Profiler, AttributesWaitToTheContendedLock) {
  core::SamhitaConfig cfg;
  cfg.trace_enabled = true;
  core::SamhitaRuntime runtime(cfg);
  const auto hot = runtime.create_mutex();   // id 0: all threads, many times
  const auto cold = runtime.create_mutex();  // id 1: one thread, once
  const auto bar = runtime.create_barrier(4);
  rt::Addr a = 0;
  rt::Addr b = 0;
  runtime.parallel_run(4, [&](rt::ThreadCtx& ctx) {
    if (ctx.index() == 0) {
      a = ctx.alloc_shared(64);
      b = ctx.alloc_shared(64);
    }
    ctx.barrier(bar);
    for (int i = 0; i < 5; ++i) {
      ctx.lock(hot);
      ctx.write<double>(a, ctx.read<double>(a) + 1.0);
      ctx.unlock(hot);
    }
    if (ctx.index() == 0) {
      ctx.lock(cold);
      ctx.write<double>(b, 1.0);
      ctx.unlock(cold);
    }
  });

  const obs::Profile prof = obs::build_profile(runtime);
  ASSERT_EQ(prof.locks.size(), 2u);
  // Sorted by wait: the hot lock must lead and dominate.
  EXPECT_EQ(prof.locks[0].id, 0u);
  EXPECT_EQ(prof.locks[0].acquisitions, 20u);
  EXPECT_GT(prof.locks[0].contended_acquisitions, 0u);
  EXPECT_GT(prof.locks[0].wait_seconds, prof.locks[1].wait_seconds);
  EXPECT_GT(prof.locks[0].held_seconds, 0.0);
  EXPECT_EQ(prof.locks[1].id, 1u);
  EXPECT_EQ(prof.locks[1].acquisitions, 1u);
  EXPECT_EQ(prof.locks[1].contended_acquisitions, 0u);
  EXPECT_NEAR(prof.total_lock_wait_seconds,
              prof.locks[0].wait_seconds + prof.locks[1].wait_seconds, 1e-12);

  const std::string text = obs::format_profile(prof);
  EXPECT_NE(text.find("locks"), std::string::npos);
  EXPECT_NE(text.find("hottest cache lines"), std::string::npos);
}

TEST(Profiler, BarrierEpisodesAndImbalance) {
  core::SamhitaConfig cfg;
  cfg.trace_enabled = true;
  core::SamhitaRuntime runtime(cfg);
  const auto b = runtime.create_barrier(2);
  runtime.parallel_run(2, [&](rt::ThreadCtx& ctx) {
    for (int i = 0; i < 3; ++i) {
      // Thread 1 computes longer: thread 0 waits at the barrier.
      ctx.charge_flops(ctx.index() == 1 ? 4.0e6 : 1.0e3);
      ctx.barrier(b);
    }
  });
  const obs::Profile prof = obs::build_profile(runtime);
  ASSERT_EQ(prof.barriers.size(), 1u);
  EXPECT_EQ(prof.barriers[0].parties, 2u);
  EXPECT_EQ(prof.barriers[0].episodes, 3u);
  EXPECT_GT(prof.barriers[0].wait_seconds, 0.0);
  EXPECT_GT(prof.barriers[0].imbalance_seconds, 0.0);
  EXPECT_GT(prof.barriers[0].max_wait_seconds, 0.0);
}

TEST(Profiler, FalseSharingConcentratesOnStridedLayout) {
  // Fig 3 vs Fig 5: block layout keeps each thread's rows on its own cache
  // lines; the strided layout interleaves rows of different threads within
  // a line, so every outer iteration invalidates and re-fetches shared
  // lines. The profiler must show that concentration.
  auto run_profile = [](apps::MicrobenchAlloc alloc) {
    core::SamhitaConfig cfg;
    cfg.trace_enabled = true;
    cfg.pages_per_line = 1;  // line = one page: a thread's S*B block fills lines
    core::SamhitaRuntime runtime(cfg);
    apps::MicrobenchParams p;
    p.threads = 4;
    p.N = 4;
    p.M = 2;
    p.S = 2;
    p.B = 256;  // row = 2 KiB, block = 4 KiB = exactly one line
    p.alloc = alloc;
    apps::run_microbench(runtime, p);
    return obs::build_profile(runtime, 5);
  };

  const obs::Profile strided = run_profile(apps::MicrobenchAlloc::kGlobalStrided);
  const obs::Profile blocked = run_profile(apps::MicrobenchAlloc::kGlobal);

  // The strided layout must produce clearly more invalidation traffic. (Both
  // layouts share the lock-protected gsum line; only the strided one also
  // false-shares the data lines.)
  EXPECT_GT(strided.total_line_invalidations, blocked.total_line_invalidations);
  EXPECT_GT(strided.total_line_invalidations, 0u);
  ASSERT_FALSE(strided.lines.empty());
  // ...concentrated on lines multiple threads touch.
  EXPECT_GE(strided.lines[0].sharers, 2u);
  EXPECT_GT(strided.lines[0].invalidations, 0u);
  // Strided spreads heavy invalidation traffic over the falsely-shared data
  // lines; blocked confines it to the gsum line.
  auto hot_shared_lines = [](const obs::Profile& prof) {
    std::size_t n = 0;
    for (const obs::LineProfile& l : prof.lines) {
      if (l.invalidations > 0 && l.sharers >= 2) ++n;
    }
    return n;
  };
  EXPECT_GE(hot_shared_lines(strided), 3u);
  EXPECT_GT(hot_shared_lines(strided), hot_shared_lines(blocked));
}

// --- run report --------------------------------------------------------------

TEST(RunReport, SchemaAndTotalsMatchSummary) {
  core::SamhitaConfig cfg;
  cfg.trace_enabled = true;
  core::SamhitaRuntime runtime(cfg);
  apps::MicrobenchParams p;
  p.threads = 2;
  p.N = 2;
  p.M = 4;
  p.alloc = apps::MicrobenchAlloc::kGlobal;
  apps::run_microbench(runtime, p);

  std::ostringstream os;
  obs::write_run_report(runtime, os, "micro", 5);
  const obs::JsonValue root = obs::json_parse(os.str());

  EXPECT_DOUBLE_EQ(root.at("schema_version").number,
                   static_cast<double>(obs::kRunReportSchemaVersion));
  EXPECT_EQ(root.at("tool").str, "samhita_sim");
  EXPECT_EQ(root.at("workload").str, "micro");

  // The report's summary must agree with core::summarize / format_report.
  const core::RunSummary s = core::summarize(runtime);
  const obs::JsonValue& js = root.at("summary");
  EXPECT_DOUBLE_EQ(js.at("threads").number, static_cast<double>(s.threads));
  EXPECT_DOUBLE_EQ(js.at("elapsed_seconds").number, s.elapsed_seconds);
  EXPECT_DOUBLE_EQ(js.at("mean_compute_seconds").number, s.mean_compute_seconds);
  EXPECT_DOUBLE_EQ(js.at("mean_sync_seconds").number, s.mean_sync_seconds);
  EXPECT_DOUBLE_EQ(js.at("max_compute_seconds").number, s.max_compute_seconds);
  EXPECT_DOUBLE_EQ(js.at("max_sync_seconds").number, s.max_sync_seconds);
  EXPECT_DOUBLE_EQ(js.at("cache_misses").number, static_cast<double>(s.cache_misses));
  EXPECT_DOUBLE_EQ(js.at("network_messages").number,
                   static_cast<double>(s.network_messages));

  ASSERT_TRUE(root.at("threads").is_array());
  EXPECT_EQ(root.at("threads").arr.size(), 2u);
  ASSERT_TRUE(root.at("servers").is_array());
  EXPECT_EQ(root.at("servers").arr.size(), 1u);
  ASSERT_TRUE(root.at("links").is_array());
  EXPECT_FALSE(root.at("links").arr.empty());
  ASSERT_NE(root.find("manager"), nullptr);
  EXPECT_GT(root.at("manager").at("requests").number, 0.0);

  // Registry totals mirror the summary counters.
  const obs::JsonValue& counters = root.at("registry").at("counters");
  EXPECT_DOUBLE_EQ(counters.at("cache.misses").number,
                   static_cast<double>(s.cache_misses));
  EXPECT_DOUBLE_EQ(counters.at("net.messages").number,
                   static_cast<double>(s.network_messages));

  // Tracing was on, so the contention profile is embedded.
  ASSERT_NE(root.find("profile"), nullptr);
  ASSERT_TRUE(root.at("profile").at("locks").is_array());
  EXPECT_FALSE(root.at("profile").at("locks").arr.empty());

  // v2: summary carries the span-loss and host-throughput figures...
  EXPECT_DOUBLE_EQ(js.at("spans_dropped").number, static_cast<double>(s.spans_dropped));
  EXPECT_GT(js.at("sim_events_per_sec").number, 0.0);

  // ...a per-op latency section with the full quantile ladder...
  const obs::JsonValue& lat = root.at("latencies");
  for (const char* op : {"demand_miss", "lock_wait", "barrier_wait", "flush_rpc"}) {
    ASSERT_NE(lat.find(op), nullptr) << op;
  }
  const obs::JsonValue& dm = lat.at("demand_miss");
  EXPECT_GT(dm.at("count").number, 0.0);
  for (const char* q : {"p50", "p95", "p99", "p999"}) {
    ASSERT_NE(dm.find(q), nullptr) << q;
  }

  // ...an always-present simulator self-profiling section...
  const obs::JsonValue& simj = root.at("simulator");
  EXPECT_GT(simj.at("events_per_sec").number, 0.0);
  EXPECT_GT(simj.at("thread_resumes").number, 0.0);
  // The cooperative runtime drives work through SimThreads; the timer queue
  // may legitimately stay empty, but the counters must be reported.
  ASSERT_NE(simj.find("event_queue_peak"), nullptr);
  ASSERT_NE(simj.find("event_callbacks"), nullptr);
  EXPECT_GE(simj.at("event_queue_peak").number, 0.0);
  ASSERT_NE(simj.find("event_counts"), nullptr);
  EXPECT_GT(simj.at("event_counts").at("cache_miss").number, 0.0);

  // ...and the critical-path attribution, whose buckets partition thread-time.
  const obs::JsonValue& cp = root.at("critical_path");
  const obs::JsonValue& bd = cp.at("breakdown");
  const double total =
      bd.at("compute_seconds").number + bd.at("demand_fetch_seconds").number +
      bd.at("server_service_seconds").number + bd.at("network_seconds").number +
      bd.at("lock_wait_seconds").number + bd.at("barrier_wait_seconds").number +
      bd.at("recovery_seconds").number;
  EXPECT_NEAR(total, cp.at("total_thread_seconds").number,
              0.01 * cp.at("total_thread_seconds").number);
  ASSERT_TRUE(cp.at("chains").is_array());
  EXPECT_FALSE(cp.at("chains").arr.empty());
}

TEST(RunReport, WithoutTracingOmitsProfile) {
  core::SamhitaRuntime runtime;
  apps::MicrobenchParams p;
  p.threads = 1;
  p.N = 1;
  p.M = 2;
  apps::run_microbench(runtime, p);
  std::ostringstream os;
  obs::write_run_report(runtime, os, "micro");
  const obs::JsonValue root = obs::json_parse(os.str());
  EXPECT_EQ(root.find("profile"), nullptr);
  EXPECT_EQ(root.find("latencies"), nullptr);
  EXPECT_EQ(root.find("critical_path"), nullptr);
  EXPECT_FALSE(root.at("config").at("trace_enabled").boolean);
  // Self-profiling needs no trace: the section is always present.
  ASSERT_NE(root.find("simulator"), nullptr);
  EXPECT_GT(root.at("simulator").at("events_per_sec").number, 0.0);
  EXPECT_EQ(root.at("simulator").find("event_counts"), nullptr);
}

TEST(CollectRegistry, MirrorsComponentCounters) {
  core::SamhitaConfig cfg;
  cfg.trace_enabled = true;
  core::SamhitaRuntime runtime(cfg);
  apps::MicrobenchParams p;
  p.threads = 2;
  p.N = 1;
  p.M = 2;
  p.alloc = apps::MicrobenchAlloc::kGlobal;
  apps::run_microbench(runtime, p);

  const obs::Registry reg = obs::collect_registry(runtime);
  EXPECT_EQ(reg.counter("net.messages"), runtime.network_messages());
  EXPECT_EQ(reg.counter("net.bytes"), runtime.network_bytes());
  std::uint64_t shard_requests = 0;
  for (unsigned s = 0; s < runtime.services().shard_count(); ++s) {
    shard_requests += runtime.services().shard(s).service().request_count();
  }
  EXPECT_EQ(reg.counter("manager.requests"), shard_requests);
  EXPECT_EQ(reg.counter("manager.shard.0.requests"), shard_requests);
  const auto& srv = runtime.servers()[0];
  EXPECT_EQ(reg.counter("server.0.read_requests"), srv.counters().read_requests);
  EXPECT_EQ(reg.counter("server.0.write_requests"), srv.counters().write_requests);
  EXPECT_GT(reg.counter("server.0.bytes_read") + reg.counter("server.0.bytes_written"),
            0u);
  // Lock/barrier wait and per-op latency distributions come from the span
  // stream.
  ASSERT_NE(reg.find_histogram("lock_wait_ns"), nullptr);
  ASSERT_NE(reg.find_histogram("barrier_wait_ns"), nullptr);
  EXPECT_GT(reg.find_histogram("barrier_wait_ns")->count(), 0u);
  ASSERT_NE(reg.find_histogram("demand_miss_ns"), nullptr);
  EXPECT_GT(reg.find_histogram("demand_miss_ns")->count(), 0u);
}

}  // namespace
}  // namespace sam
