// Unit tests for network models and the SCL messaging layer.
#include <gtest/gtest.h>

#include "net/link_model.hpp"
#include "net/network_model.hpp"
#include "scl/scl.hpp"
#include "util/expect.hpp"

namespace sam {
namespace {

TEST(LinkModel, TimingAlgebra) {
  net::LinkModel link({.latency = 1000, .per_message = 100, .bandwidth_bytes_per_sec = 1e9});
  // 1000 bytes at 1 GB/s = 1 us serialization.
  EXPECT_EQ(link.serialization(1000), 1000u);
  EXPECT_EQ(link.one_way(1000), 1000u + 100u + 1000u);
  EXPECT_EQ(link.one_way(0), 1100u);
}

TEST(LinkModel, RejectsNonPositiveBandwidth) {
  EXPECT_ANY_THROW(net::LinkModel({.bandwidth_bytes_per_sec = 0}));
}

TEST(IBFabric, LatencyComponentsAddUp) {
  net::IBFabricModel ib(4, net::IBFabricModel::Params{.per_side_overhead = 600,
                                                      .switch_latency = 100,
                                                      .wire_latency = 600,
                                                      .bandwidth_bytes_per_sec = 3.2e9});
  // Zero-ish payload: 2*600 + 600 + 100 = 1900 plus tiny serialization.
  const SimTime arrival = ib.deliver(0, 0, 1, 64);
  EXPECT_GE(arrival, 1900u);
  EXPECT_LE(arrival, 1950u);
  EXPECT_EQ(ib.message_count(), 1u);
  EXPECT_EQ(ib.bytes_sent(), 64u);
}

TEST(IBFabric, NicSerializationCausesQueueing) {
  net::IBFabricModel ib(2, net::IBFabricModel::qdr_defaults());
  const std::size_t big = 1 << 20;  // ~327 us of serialization at 3.2 GB/s
  const SimTime first = ib.deliver(0, 0, 1, big);
  const SimTime second = ib.deliver(0, 0, 1, big);
  // The second message queues behind the first on the sender NIC.
  EXPECT_GT(second, first + 200'000u);
}

TEST(IBFabric, IntraNodeIsCheap) {
  net::IBFabricModel ib(2, net::IBFabricModel::qdr_defaults());
  const SimTime local = ib.deliver(0, 1, 1, 4096);
  const SimTime remote = ib.deliver(0, 0, 1, 4096);
  EXPECT_LT(local, remote / 2);
}

TEST(PCIe, SharedBusSerializes) {
  net::PCIeModel bus(3, net::PCIeModel::gen2_x16_defaults());
  const std::size_t mb = 1 << 20;
  const SimTime a = bus.deliver(0, 0, 1, mb);
  const SimTime b = bus.deliver(0, 2, 1, mb);  // different src, same bus
  EXPECT_GT(b, a);
}

TEST(Scif, CheaperThanVerbsProxy) {
  net::PCIeModel proxy(2, net::PCIeModel::gen2_x16_defaults());
  net::SCIFModel scif(2, net::SCIFModel::defaults());
  const SimTime via_proxy = proxy.deliver(0, 0, 1, 64);
  const SimTime via_scif = scif.deliver(0, 0, 1, 64);
  EXPECT_LT(via_scif, via_proxy);
}

TEST(NetworkFactory, MakesAllKinds) {
  EXPECT_EQ(net::make_network("ib", 3)->name(), "ib-qdr");
  EXPECT_EQ(net::make_network("pcie", 3)->name(), "pcie-proxy");
  EXPECT_EQ(net::make_network("scif", 3)->name(), "pcie-scif");
  EXPECT_THROW(net::make_network("token-ring", 3), util::ContractViolation);
}

TEST(NetworkModel, NodeRangeChecked) {
  auto ib = net::make_network("ib", 2);
  EXPECT_THROW(ib->deliver(0, 0, 5, 64), util::ContractViolation);
}

TEST(Scl, RdmaReadIsRoundTrip) {
  net::IBFabricModel ib(2, net::IBFabricModel::qdr_defaults());
  scl::Scl s(&ib);
  const scl::Completion c = s.rdma_read(0, 0, 1, 16384);
  EXPECT_TRUE(c.ok());
  EXPECT_EQ(c.attempts, 1u);
  EXPECT_EQ(c.bytes_moved, 16384u);
  // Must cost at least two one-way latencies plus data serialization.
  EXPECT_GT(c.done, 2 * 1900u);
}

TEST(Scl, RdmaWriteRemoteVisibleBeforeLocalAck) {
  net::IBFabricModel ib(2, net::IBFabricModel::qdr_defaults());
  scl::Scl s(&ib);
  const scl::Completion w = s.rdma_write(0, 0, 1, 4096);
  EXPECT_TRUE(w.ok());
  EXPECT_LT(w.remote_visible, w.done);  // ack lands after the payload
}

TEST(Scl, RpcIncludesServiceAndQueueing) {
  net::IBFabricModel ib(2, net::IBFabricModel::qdr_defaults());
  scl::Scl s(&ib);
  sim::Resource server("srv");
  const SimTime r1 = s.rpc(0, 0, 1, 64, 64, server, 10'000).done;
  const SimTime r2 = s.rpc(0, 0, 1, 64, 64, server, 10'000).done;
  EXPECT_GT(r1, 10'000u + 2 * 1900u);
  EXPECT_GT(r2, r1);  // queued behind the first at the server
  EXPECT_EQ(server.request_count(), 2u);
}

}  // namespace
}  // namespace sam
