// Unit tests for the per-thread software page cache.
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

#include "core/page_cache.hpp"
#include "util/expect.hpp"

namespace sam::core {
namespace {

SamhitaConfig small_config() {
  SamhitaConfig cfg;
  cfg.pages_per_line = 4;
  cfg.cache_capacity_bytes = 4 * cfg.line_bytes();  // 4 lines
  return cfg;
}


TEST(PageCache, Geometry) {
  SamhitaConfig cfg = small_config();
  PageCache c(&cfg, 0);
  EXPECT_EQ(c.line_of_page(0), 0u);
  EXPECT_EQ(c.line_of_page(3), 0u);
  EXPECT_EQ(c.line_of_page(4), 1u);
  EXPECT_EQ(c.line_of_addr(cfg.line_bytes()), 1u);
  EXPECT_EQ(c.line_base(2), 2 * cfg.line_bytes());
  EXPECT_EQ(c.first_page(2), 8u);
}

TEST(PageCache, InstallFindErase) {
  SamhitaConfig cfg = small_config();
  PageCache c(&cfg, 0);
  EXPECT_EQ(c.find(5), nullptr);
  auto& l = c.install(5, 0, false);
  EXPECT_EQ(&l, c.find(5));
  EXPECT_TRUE(c.contains(5));
  EXPECT_EQ(c.resident_lines(), 1u);
  c.erase(5);
  EXPECT_FALSE(c.contains(5));
  EXPECT_THROW(c.erase(5), util::ContractViolation);
}

TEST(PageCache, DoubleInstallThrows) {
  SamhitaConfig cfg = small_config();
  PageCache c(&cfg, 0);
  c.install(1, 0, false);
  EXPECT_THROW(c.install(1, 0, false), util::ContractViolation);
}

TEST(PageCache, TwinAndDirtyTracking) {
  SamhitaConfig cfg = small_config();
  PageCache c(&cfg, 0);
  auto& l = c.install(0, 0, false);
  EXPECT_TRUE(c.needs_twin(l));
  EXPECT_THROW(c.mark_written(l, 0, 8), util::ContractViolation);  // twin first
  c.make_twin(l);
  EXPECT_FALSE(c.needs_twin(l));
  // Write spanning pages 1 and 2 of the line.
  c.mark_written(l, mem::kPageSize + 100, mem::kPageSize);
  EXPECT_TRUE(l.dirty);
  const auto dirty = c.dirty_pages(l);
  ASSERT_EQ(dirty.size(), 2u);
  EXPECT_EQ(dirty[0], 1u);
  EXPECT_EQ(dirty[1], 2u);
  c.clean(l);
  EXPECT_FALSE(l.dirty);
  EXPECT_TRUE(c.needs_twin(l));
  EXPECT_TRUE(c.dirty_pages(l).empty());
}

TEST(PageCache, MarkWrittenOutsideLineThrows) {
  SamhitaConfig cfg = small_config();
  PageCache c(&cfg, 0);
  auto& l = c.install(1, 0, false);
  c.make_twin(l);
  EXPECT_THROW(c.mark_written(l, 0, 8), util::ContractViolation);
}

TEST(PageCache, DirtyLinesSortedById) {
  SamhitaConfig cfg = small_config();
  PageCache c(&cfg, 0);
  for (LineId id : {7u, 2u, 9u}) {
    auto& l = c.install(id, 0, false);
    c.make_twin(l);
    c.mark_written(l, c.line_base(id), 8);
  }
  c.install(1, 0, false);  // clean
  const auto dirty = c.dirty_lines();
  ASSERT_EQ(dirty.size(), 3u);
  EXPECT_EQ(dirty[0]->id, 2u);
  EXPECT_EQ(dirty[1]->id, 7u);
  EXPECT_EQ(dirty[2]->id, 9u);
}

TEST(PageCache, CapacityInLines) {
  SamhitaConfig cfg = small_config();
  PageCache c(&cfg, 0);
  EXPECT_EQ(c.capacity_lines(), 4u);
  for (LineId id = 0; id < 4; ++id) c.install(id, 0, false);
  EXPECT_FALSE(c.over_capacity());
  c.install(4, 0, false);
  EXPECT_TRUE(c.over_capacity());
}

TEST(PageCache, DirtyFirstEvictionPrefersDirtyLru) {
  SamhitaConfig cfg = small_config();
  cfg.eviction = EvictionPolicy::kDirtyFirst;
  PageCache c(&cfg, 0);
  auto& a = c.install(0, 0, false);  // clean, oldest
  auto& b = c.install(1, 0, false);
  auto& d = c.install(2, 0, false);
  c.make_twin(b);
  c.mark_written(b, c.line_base(1), 8);
  c.make_twin(d);
  c.mark_written(d, c.line_base(2), 8);
  c.touch(b);  // b is now more recently used than d
  PageCache::Line* victim = c.pick_victim(nullptr);
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->id, d.id);  // least-recently-used dirty line
  (void)a;
}

TEST(PageCache, LruEvictionIgnoresDirtiness) {
  SamhitaConfig cfg = small_config();
  cfg.eviction = EvictionPolicy::kLru;
  PageCache c(&cfg, 0);
  auto& a = c.install(0, 0, false);
  auto& b = c.install(1, 0, false);
  c.make_twin(b);
  c.mark_written(b, c.line_base(1), 8);
  PageCache::Line* victim = c.pick_victim(nullptr);
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->id, a.id);  // oldest regardless of dirty state
  (void)b;
}

TEST(PageCache, PinnedLinesSkipped) {
  SamhitaConfig cfg = small_config();
  PageCache c(&cfg, 0);
  c.install(0, 0, false);
  c.install(1, 0, false);
  auto* victim =
      c.pick_victim([](const PageCache::Line& l) { return l.id == 0; });
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->id, 1u);
  auto* none = c.pick_victim([](const PageCache::Line&) { return true; });
  EXPECT_EQ(none, nullptr);
}

TEST(PageCache, PrefetchedFlagAndReadyTimeStored) {
  SamhitaConfig cfg = small_config();
  PageCache c(&cfg, 0);
  auto& demand = c.install(0, 100, false);
  auto& ahead = c.install(1, 900, true);
  EXPECT_FALSE(demand.prefetched);
  EXPECT_TRUE(ahead.prefetched);
  EXPECT_EQ(ahead.ready_time, 900);
}

TEST(PageCache, VictimPredicateCanSkipInFlightLines) {
  // evict_for_space must never evict a line whose batched fetch is still in
  // flight (ready_time in the future); model that with the predicate hook.
  SamhitaConfig cfg = small_config();
  PageCache c(&cfg, 0);
  c.install(0, 500, true);  // in flight until t=500
  c.install(1, 0, false);
  const SimTime now = 100;
  auto* victim = c.pick_victim(
      [now](const PageCache::Line& l) { return l.ready_time > now; });
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->id, 1u);
  const SimTime later = 1000;
  auto* oldest = c.pick_victim(
      [later](const PageCache::Line& l) { return l.ready_time > later; });
  ASSERT_NE(oldest, nullptr);
  EXPECT_EQ(oldest->id, 0u);  // arrived: eligible again, and LRU-oldest
}

TEST(PageCache, ResidentIdsSorted) {
  SamhitaConfig cfg = small_config();
  PageCache c(&cfg, 0);
  for (LineId id : {9u, 3u, 6u}) c.install(id, 0, false);
  EXPECT_EQ(c.resident_line_ids(), (std::vector<LineId>{3, 6, 9}));
}

TEST(PageCache, RejectsBadLineWidth) {
  SamhitaConfig cfg;
  cfg.pages_per_line = 65;
  EXPECT_THROW(PageCache(&cfg, 0), util::ContractViolation);
}

TEST(PageCache, InstallZeroFillsAndRecyclesFrames) {
  SamhitaConfig cfg = small_config();
  PageCache c(&cfg, 0);
  auto& l = c.install(0, 0, false);
  ASSERT_EQ(l.data.size(), cfg.line_bytes());
  l.data[7] = std::byte{0xAB};
  c.make_twin(l);
  c.mark_written(l, 0, 8);
  c.erase(0);
  // The recycled frame must come back pristine: zero data, no twin, clean.
  auto& r = c.install(3, 0, false);
  ASSERT_EQ(r.data.size(), cfg.line_bytes());
  EXPECT_EQ(r.data[7], std::byte{0});
  EXPECT_TRUE(c.needs_twin(r));
  EXPECT_FALSE(r.dirty);
  EXPECT_EQ(r.dirty_page_mask, 0u);
}

TEST(PageCache, LinePointersStableAcrossTableGrowth) {
  // The miss path holds a Line& across later installs (folded prefetches);
  // frames must never move even as the hash table rehashes.
  SamhitaConfig cfg = small_config();
  cfg.cache_capacity_bytes = 4096 * cfg.line_bytes();
  PageCache c(&cfg, 0);
  std::vector<PageCache::Line*> ptrs;
  for (LineId id = 0; id < 500; ++id) ptrs.push_back(&c.install(id, 0, false));
  for (LineId id = 0; id < 500; ++id) {
    EXPECT_EQ(ptrs[id], c.find(id));
    EXPECT_EQ(ptrs[id]->id, id);
  }
}

TEST(PageCache, RandomizedChurnMatchesReferenceSet) {
  // Install/erase churn with adversarial ids exercises linear probing and
  // backward-shift deletion; residency must always match a reference set.
  SamhitaConfig cfg = small_config();
  cfg.cache_capacity_bytes = 4096 * cfg.line_bytes();
  PageCache c(&cfg, 0);
  std::set<LineId> ref;
  std::mt19937 rng(7);
  for (int step = 0; step < 20000; ++step) {
    // Small id universe forces frequent collisions and re-installs.
    const LineId id = rng() % 97;
    if (ref.count(id)) {
      c.erase(id);
      ref.erase(id);
    } else {
      c.install(id, 0, false);
      ref.insert(id);
    }
    ASSERT_EQ(c.resident_lines(), ref.size());
  }
  const std::vector<LineId> expect(ref.begin(), ref.end());
  EXPECT_EQ(c.resident_line_ids(), expect);
  for (LineId id = 0; id < 97; ++id) EXPECT_EQ(c.contains(id), ref.count(id) != 0);
}

TEST(PageCache, NonPowerOfTwoLineWidthGeometry) {
  SamhitaConfig cfg;
  cfg.pages_per_line = 3;  // divide path, not the shift fast path
  PageCache c(&cfg, 0);
  EXPECT_EQ(c.line_of_page(0), 0u);
  EXPECT_EQ(c.line_of_page(2), 0u);
  EXPECT_EQ(c.line_of_page(3), 1u);
  EXPECT_EQ(c.line_of_page(7), 2u);
  EXPECT_EQ(c.first_page(2), 6u);
  c.install(2, 0, false);
  EXPECT_TRUE(c.contains(2));
}

}  // namespace
}  // namespace sam::core
