// Unit tests for the stride prefetcher plus integration tests for batched
// fetches, pipelined flushes, and the eviction accuracy feedback.
#include <gtest/gtest.h>

#include <vector>

#include "apps/microbench.hpp"
#include "core/prefetcher.hpp"
#include "core/report.hpp"
#include "core/samhita_runtime.hpp"

namespace sam::core {
namespace {

TEST(StridePrefetcher, NonePolicyPredictsNothing) {
  StridePrefetcher p(PrefetchPolicy::kNone, 4);
  EXPECT_TRUE(p.on_miss(10).empty());
  EXPECT_TRUE(p.on_miss(11).empty());
}

TEST(StridePrefetcher, NextLinePolicyAlwaysAdjacent) {
  StridePrefetcher p(PrefetchPolicy::kNextLine, 4);
  EXPECT_EQ(p.on_miss(10), (std::vector<LineId>{11}));
  EXPECT_EQ(p.on_miss(42), (std::vector<LineId>{43}));
  EXPECT_FALSE(p.stride_confirmed());
}

TEST(StridePrefetcher, ForwardStrideConfirmedAfterTwoDeltas) {
  StridePrefetcher p(PrefetchPolicy::kStride, 4);
  EXPECT_EQ(p.on_miss(0), (std::vector<LineId>{1}));   // no history: fallback
  EXPECT_EQ(p.on_miss(8), (std::vector<LineId>{9}));   // one delta: fallback
  EXPECT_FALSE(p.stride_confirmed());
  EXPECT_EQ(p.on_miss(16), (std::vector<LineId>{24, 32, 40, 48}));
  EXPECT_TRUE(p.stride_confirmed());
  EXPECT_EQ(p.stride(), 8);
}

TEST(StridePrefetcher, BackwardStrideRunsAheadDownward) {
  StridePrefetcher p(PrefetchPolicy::kStride, 4);
  p.on_miss(100);
  p.on_miss(90);
  EXPECT_EQ(p.on_miss(80), (std::vector<LineId>{70, 60, 50, 40}));
  EXPECT_EQ(p.stride(), -10);
}

TEST(StridePrefetcher, BackwardStrideStopsAtAddressSpaceEdge) {
  StridePrefetcher p(PrefetchPolicy::kStride, 4);
  p.on_miss(20);
  p.on_miss(10);
  EXPECT_TRUE(p.on_miss(0).empty());  // next would be line -10
}

TEST(StridePrefetcher, UnitStrideDetected) {
  StridePrefetcher p(PrefetchPolicy::kStride, 4);
  p.on_miss(5);
  p.on_miss(6);
  EXPECT_EQ(p.on_miss(7), (std::vector<LineId>{8, 9, 10, 11}));
}

TEST(StridePrefetcher, IrregularStreamFallsBackToAdjacent) {
  StridePrefetcher p(PrefetchPolicy::kStride, 4);
  for (const LineId miss : {3u, 17u, 4u, 90u, 12u}) {
    EXPECT_EQ(p.on_miss(miss), (std::vector<LineId>{miss + 1}));
  }
  EXPECT_FALSE(p.stride_confirmed());
}

TEST(StridePrefetcher, StrideChangeResetsConfirmation) {
  StridePrefetcher p(PrefetchPolicy::kStride, 4);
  p.on_miss(0);
  p.on_miss(8);
  ASSERT_FALSE(p.on_miss(16).empty());  // stride 8 confirmed
  EXPECT_EQ(p.on_miss(17), (std::vector<LineId>{18}));  // new delta: fallback
  EXPECT_FALSE(p.stride_confirmed());
  EXPECT_EQ(p.on_miss(18), (std::vector<LineId>{19, 20, 21, 22}));
}

TEST(StridePrefetcher, UnusedEvictionsHalveDepthHitsGrowItBack) {
  StridePrefetcher p(PrefetchPolicy::kStride, 8);
  EXPECT_EQ(p.depth(), 8u);
  p.on_unused_evict();
  EXPECT_EQ(p.depth(), 8u);  // decays every second unused eviction
  p.on_unused_evict();
  EXPECT_EQ(p.depth(), 4u);
  p.on_unused_evict();
  p.on_unused_evict();
  EXPECT_EQ(p.depth(), 2u);
  for (int i = 0; i < 4; ++i) p.on_unused_evict();
  EXPECT_EQ(p.depth(), 1u);  // floor
  for (int i = 0; i < 8; ++i) p.on_prefetch_hit();
  EXPECT_EQ(p.depth(), 2u);  // grows one line per kGrowEvery hits
  for (int i = 0; i < 8 * 10; ++i) p.on_prefetch_hit();
  EXPECT_EQ(p.depth(), 8u);  // capped at max_depth
}

TEST(StridePrefetcher, AccuracyTracksResolvedPrefetches) {
  StridePrefetcher p(PrefetchPolicy::kStride, 4);
  EXPECT_DOUBLE_EQ(p.accuracy(), 1.0);  // nothing resolved yet
  p.on_prefetch_hit();
  EXPECT_DOUBLE_EQ(p.accuracy(), 1.0);
  p.on_unused_evict();
  EXPECT_DOUBLE_EQ(p.accuracy(), 0.5);
}

// --- integration: batched fetch / pipelined flush on the real runtime ------

apps::MicrobenchParams strided_params() {
  apps::MicrobenchParams p;
  p.threads = 4;
  p.N = 3;
  p.M = 20;
  p.S = 4;
  p.B = 256;
  p.alloc = apps::MicrobenchAlloc::kGlobalStrided;
  return p;
}

TEST(BatchedPaging, BatchedFetchMatchesPerLineResultsAndIsFaster) {
  const apps::MicrobenchParams p = strided_params();

  SamhitaConfig base;  // paper protocol: nextline, one line per RPC
  base.paranoid_checks = true;
  SamhitaRuntime baseline(base);
  const auto r0 = apps::run_microbench(baseline, p);

  SamhitaConfig cfg;
  cfg.paranoid_checks = true;  // validates every clean line against servers
  cfg.prefetch_policy = PrefetchPolicy::kStride;
  cfg.max_batch_lines = 4;
  SamhitaRuntime runtime(cfg);
  const auto r1 = apps::run_microbench(runtime, p);

  // Functional results are identical; the batched protocol only changes time.
  EXPECT_DOUBLE_EQ(r1.gsum, r0.gsum);
  EXPECT_LT(r1.mean_compute_seconds, r0.mean_compute_seconds);

  const RunSummary s = summarize(runtime);
  EXPECT_GT(s.batched_fetches, 0u);
  // Every batched RPC carries at least two line segments.
  EXPECT_GE(s.batch_segments, 2 * s.batched_fetches);
  EXPECT_GT(s.prefetch_hits, 0u);
  EXPECT_EQ(summarize(baseline).batched_fetches, 0u);
}

TEST(BatchedPaging, PipelinedFlushMatchesResultsAndOverlapsRpcs) {
  const apps::MicrobenchParams p = strided_params();

  SamhitaConfig base;
  base.memory_servers = 4;
  base.paranoid_checks = true;
  SamhitaRuntime baseline(base);
  const auto r0 = apps::run_microbench(baseline, p);

  SamhitaConfig cfg = base;
  cfg.flush_pipeline = true;
  SamhitaRuntime runtime(cfg);
  const auto r1 = apps::run_microbench(runtime, p);

  EXPECT_DOUBLE_EQ(r1.gsum, r0.gsum);
  const RunSummary s = summarize(runtime);
  EXPECT_GT(s.flush_overlap_saved_seconds, 0.0);
  EXPECT_LE(r1.mean_sync_seconds, r0.mean_sync_seconds);
}

TEST(BatchedPaging, DeterministicUnderBatchingAndPipelining) {
  const apps::MicrobenchParams p = strided_params();
  SamhitaConfig cfg;
  cfg.memory_servers = 2;
  cfg.prefetch_policy = PrefetchPolicy::kStride;
  cfg.max_batch_lines = 8;
  cfg.flush_pipeline = true;

  SamhitaRuntime a(cfg);
  const auto ra = apps::run_microbench(a, p);
  SamhitaRuntime b(cfg);
  const auto rb = apps::run_microbench(b, p);

  EXPECT_DOUBLE_EQ(ra.gsum, rb.gsum);
  EXPECT_DOUBLE_EQ(ra.elapsed_seconds, rb.elapsed_seconds);
  EXPECT_DOUBLE_EQ(ra.mean_compute_seconds, rb.mean_compute_seconds);
  EXPECT_DOUBLE_EQ(ra.mean_sync_seconds, rb.mean_sync_seconds);
}

TEST(BatchedPaging, UnusedPrefetchEvictionsFeedAccuracyCounters) {
  // A tiny cache walking widely-spaced lines: adjacent-line prefetches are
  // never demanded and must be evicted as "unused", feeding the throttle.
  SamhitaConfig cfg;
  cfg.cache_capacity_bytes = 4 * cfg.line_bytes();
  SamhitaRuntime runtime(cfg);
  const std::size_t lines = 24;
  runtime.parallel_run(1, [&](rt::ThreadCtx& ctx) {
    const rt::Addr a = ctx.alloc_shared(lines * cfg.line_bytes());
    for (std::size_t l = 0; l < lines; l += 2) {
      (void)ctx.read<double>(a + l * cfg.line_bytes());
    }
  });
  EXPECT_GT(summarize(runtime).prefetch_unused, 0u);
}

}  // namespace
}  // namespace sam::core
