// Unit tests for the discrete-event queue.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "util/expect.hpp"

namespace sam::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.next_time(), 10u);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(100, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const EventId a = q.schedule(5, [&] { ++fired; });
  q.schedule(6, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(a));
  EXPECT_FALSE(q.cancel(a));  // already cancelled
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), 6u);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelAfterRunReturnsFalse) {
  EventQueue q;
  const EventId a = q.schedule(1, [] {});
  q.run_next();
  EXPECT_FALSE(q.cancel(a));
}

TEST(EventQueue, RunUntilExecutesInclusiveBound) {
  EventQueue q;
  int count = 0;
  q.schedule(10, [&] { ++count; });
  q.schedule(20, [&] { ++count; });
  q.schedule(21, [&] { ++count; });
  EXPECT_EQ(q.run_until(20), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  std::vector<SimTime> times;
  q.schedule(1, [&] {
    times.push_back(1);
    q.schedule(2, [&] { times.push_back(2); });
  });
  while (!q.empty()) times.push_back(q.run_next() * 100);
  // run_next returns the timestamp; callbacks also record.
  EXPECT_EQ(times, (std::vector<SimTime>{1, 100, 2, 200}));
}

TEST(EventQueue, EmptyAccessThrows) {
  EventQueue q;
  EXPECT_THROW(q.next_time(), util::ContractViolation);
  EXPECT_THROW(q.run_next(), util::ContractViolation);
  EXPECT_THROW(q.schedule(1, nullptr), util::ContractViolation);
}

}  // namespace
}  // namespace sam::sim
