// Integration tests for the Samhita DSM runtime: functional correctness of
// the full RegC protocol (demand paging, twins/diffs, update sets, barrier
// invalidation) plus timing sanity.
#include <gtest/gtest.h>

#include <vector>

#include "core/samhita_runtime.hpp"
#include "sim/coop_scheduler.hpp"
#include "util/expect.hpp"

namespace sam::core {
namespace {

SamhitaConfig test_config() {
  SamhitaConfig cfg;
  cfg.memory_servers = 2;
  return cfg;
}

TEST(SamhitaRuntime, SingleThreadWriteReadRoundTrip) {
  SamhitaRuntime rt(test_config());
  std::vector<double> seen;
  rt.parallel_run(1, [&](rt::ThreadCtx& ctx) {
    const rt::Addr a = ctx.alloc(64 * sizeof(double));
    auto w = ctx.write_array<double>(a, 64);
    for (int i = 0; i < 64; ++i) w[i] = i * 0.5;
    auto r = ctx.read_array<double>(a, 64);
    seen.assign(r.begin(), r.end());
  });
  ASSERT_EQ(seen.size(), 64u);
  EXPECT_DOUBLE_EQ(seen[63], 31.5);
}

TEST(SamhitaRuntime, DirtyDataReachesServersAtBarrier) {
  SamhitaRuntime rt(test_config());
  const auto b = rt.create_barrier(1);
  rt::Addr addr = 0;
  rt.parallel_run(1, [&](rt::ThreadCtx& ctx) {
    addr = ctx.alloc(sizeof(double));
    ctx.write<double>(addr, 42.5);
    // Before the barrier the write lives only in the local cache...
    ctx.barrier(b);
    // ...after it, the diff has been applied to the home server.
  });
  EXPECT_DOUBLE_EQ(rt.read_global_array<double>(addr, 1)[0], 42.5);
}

TEST(SamhitaRuntime, BarrierPublishesWritesAcrossThreads) {
  SamhitaRuntime rt(test_config());
  const auto b = rt.create_barrier(2);
  rt::Addr addr = 0;
  double observed = -1;
  rt.parallel_run(2, [&](rt::ThreadCtx& ctx) {
    if (ctx.index() == 0) {
      addr = ctx.alloc(sizeof(double));
      ctx.write<double>(addr, 1.0);
    }
    ctx.barrier(b);
    if (ctx.index() == 1) {
      // Cache and then observe a remote update after the next barrier.
      EXPECT_DOUBLE_EQ(ctx.read<double>(addr), 1.0);
    }
    ctx.barrier(b);
    if (ctx.index() == 0) ctx.write<double>(addr, 2.0);
    ctx.barrier(b);
    if (ctx.index() == 1) observed = ctx.read<double>(addr);
  });
  EXPECT_DOUBLE_EQ(observed, 2.0);
}

TEST(SamhitaRuntime, FalseSharingMergesDisjointWrites) {
  // Two threads write disjoint halves of the same page; both writes must
  // survive the multiple-writer merge.
  SamhitaRuntime rt(test_config());
  const auto b = rt.create_barrier(2);
  rt::Addr addr = 0;
  rt.parallel_run(2, [&](rt::ThreadCtx& ctx) {
    if (ctx.index() == 0) addr = ctx.alloc(512 * sizeof(double));
    ctx.barrier(b);
    const std::size_t half = 256;
    const rt::Addr mine = addr + ctx.index() * half * sizeof(double);
    auto w = ctx.write_array<double>(mine, half);
    for (std::size_t i = 0; i < half; ++i) w[i] = ctx.index() + 1.0;
    ctx.barrier(b);
    // After the merge, both halves are visible to both threads.
    EXPECT_DOUBLE_EQ(ctx.read<double>(addr), 1.0);
    EXPECT_DOUBLE_EQ(ctx.read<double>(addr + half * sizeof(double)), 2.0);
  });
  const auto final0 = rt.read_global_array<double>(addr, 1)[0];
  const auto final1 = rt.read_global_array<double>(addr + 256 * sizeof(double), 1)[0];
  EXPECT_DOUBLE_EQ(final0, 1.0);
  EXPECT_DOUBLE_EQ(final1, 2.0);
}

TEST(SamhitaRuntime, LockProtectedCounterIsSerializable) {
  SamhitaRuntime rt(test_config());
  const auto m = rt.create_mutex();
  const auto b = rt.create_barrier(8);
  rt::Addr counter = 0;
  constexpr int kIters = 25;
  rt.parallel_run(8, [&](rt::ThreadCtx& ctx) {
    if (ctx.index() == 0) {
      counter = ctx.alloc(sizeof(double));
      ctx.write<double>(counter, 0.0);
    }
    ctx.barrier(b);
    for (int i = 0; i < kIters; ++i) {
      ctx.lock(m);
      const double v = ctx.read<double>(counter);
      ctx.write<double>(counter, v + 1.0);
      ctx.unlock(m);
    }
    ctx.barrier(b);
  });
  EXPECT_DOUBLE_EQ(rt.read_global_array<double>(counter, 1)[0], 8.0 * kIters);
}

TEST(SamhitaRuntime, UpdateSetsPropagateWithoutBarrier) {
  // Fine-grain RegC updates: a value written in a critical section must be
  // visible to the next acquirer even with no intervening barrier.
  SamhitaRuntime rt(test_config());
  const auto m = rt.create_mutex();
  const auto b = rt.create_barrier(2);
  rt::Addr addr = 0;
  double seen_by_second = -1;
  rt.parallel_run(2, [&](rt::ThreadCtx& ctx) {
    if (ctx.index() == 0) {
      addr = ctx.alloc(sizeof(double));
      ctx.write<double>(addr, 0.0);
    }
    ctx.barrier(b);
    if (ctx.index() == 0) {
      ctx.lock(m);
      ctx.write<double>(addr, 7.25);
      ctx.unlock(m);
      ctx.barrier(b);
    } else {
      // Ensure thread 0 acquires first: wait for it to finish its region.
      ctx.barrier(b);
      ctx.lock(m);
      seen_by_second = ctx.read<double>(addr);
      ctx.unlock(m);
    }
  });
  EXPECT_DOUBLE_EQ(seen_by_second, 7.25);
}

TEST(SamhitaRuntime, CondVarHandoff) {
  SamhitaRuntime rt(test_config());
  const auto m = rt.create_mutex();
  const auto c = rt.create_cond();
  rt::Addr flag = 0;
  double consumed = -1;
  rt.parallel_run(2, [&](rt::ThreadCtx& ctx) {
    if (ctx.index() == 0) {
      flag = ctx.alloc(sizeof(double));
      ctx.write<double>(flag, 0.0);
      ctx.lock(m);
      while (ctx.read<double>(flag) == 0.0) ctx.cond_wait(c, m);
      consumed = ctx.read<double>(flag);
      ctx.unlock(m);
    } else {
      ctx.charge_flops(1e7);  // arrive after the consumer parks
      ctx.lock(m);
      ctx.write<double>(flag, 9.0);
      ctx.cond_signal(c);
      ctx.unlock(m);
    }
  });
  EXPECT_DOUBLE_EQ(consumed, 9.0);
}

TEST(SamhitaRuntime, DemandMissesAndPrefetchCounted) {
  SamhitaConfig cfg = test_config();
  cfg.prefetch_enabled = true;
  SamhitaRuntime rt(cfg);
  rt.parallel_run(1, [&](rt::ThreadCtx& ctx) {
    // Stream through 8 lines: first touch misses, prefetch covers alternates.
    const std::size_t bytes = 8 * cfg.line_bytes();
    const rt::Addr a = ctx.alloc(bytes);
    for (std::size_t off = 0; off < bytes; off += sizeof(double)) {
      ctx.write<double>(a + off, 1.0);
    }
  });
  const Metrics& m = rt.metrics(0);
  EXPECT_GT(m.cache_misses, 0u);
  EXPECT_GT(m.prefetch_issued, 0u);
  EXPECT_GT(m.prefetch_hits, 0u);
  // Prefetching halves demand misses on a pure stream.
  EXPECT_LT(m.cache_misses, 6u);
}

TEST(SamhitaRuntime, PrefetchOffMissesEveryLine) {
  SamhitaConfig cfg = test_config();
  cfg.prefetch_enabled = false;
  SamhitaRuntime rt(cfg);
  rt.parallel_run(1, [&](rt::ThreadCtx& ctx) {
    const std::size_t bytes = 8 * cfg.line_bytes();
    const rt::Addr a = ctx.alloc(bytes);
    for (std::size_t off = 0; off < bytes; off += sizeof(double)) {
      ctx.write<double>(a + off, 1.0);
    }
  });
  EXPECT_EQ(rt.metrics(0).cache_misses, 8u);
  EXPECT_EQ(rt.metrics(0).prefetch_issued, 0u);
}

TEST(SamhitaRuntime, TinyCacheEvictsAndStaysCorrect) {
  SamhitaConfig cfg = test_config();
  cfg.cache_capacity_bytes = 2 * cfg.line_bytes();  // two lines only
  SamhitaRuntime rt(cfg);
  std::vector<double> readback;
  rt.parallel_run(1, [&](rt::ThreadCtx& ctx) {
    const std::size_t count = 8 * cfg.line_bytes() / sizeof(double);
    const rt::Addr a = ctx.alloc(count * sizeof(double));
    for (std::size_t i = 0; i < count; ++i) {
      ctx.write<double>(a + i * sizeof(double), static_cast<double>(i));
    }
    // Re-read everything: evicted dirty lines must have been flushed.
    for (std::size_t i = 0; i < count; i += 997) {
      readback.push_back(ctx.read<double>(a + i * sizeof(double)));
    }
  });
  EXPECT_GT(rt.metrics(0).evictions, 0u);
  for (std::size_t k = 0; k < readback.size(); ++k) {
    EXPECT_DOUBLE_EQ(readback[k], static_cast<double>(k * 997));
  }
}

TEST(SamhitaRuntime, SyncCostsMoreThanSmp) {
  // The paper's Fig. 11 headline: Samhita synchronization is far more
  // expensive than Pthreads because it embeds consistency operations.
  SamhitaRuntime rt(test_config());
  const auto b = rt.create_barrier(2);
  rt.parallel_run(2, [&](rt::ThreadCtx& ctx) {
    ctx.begin_measurement();
    for (int i = 0; i < 10; ++i) ctx.barrier(b);
    ctx.end_measurement();
  });
  // 10 remote barriers cost at least tens of microseconds.
  EXPECT_GT(rt.mean_sync_seconds(), 10e-6);
}

TEST(SamhitaRuntime, LocalSyncAblationIsCheaper) {
  auto sync_cost = [](bool local) {
    SamhitaConfig cfg;
    cfg.local_sync = local;
    cfg.compute_nodes = 1;  // all threads on one node (the §V scenario)
    SamhitaRuntime rt(cfg);
    const auto b = rt.create_barrier(4);
    rt.parallel_run(4, [&](rt::ThreadCtx& ctx) {
      ctx.begin_measurement();
      for (int i = 0; i < 20; ++i) ctx.barrier(b);
      ctx.end_measurement();
    });
    return rt.mean_sync_seconds();
  };
  EXPECT_LT(sync_cost(true), sync_cost(false));
}

TEST(SamhitaRuntime, HoldingLockAtExitFails) {
  SamhitaRuntime rt(test_config());
  const auto m = rt.create_mutex();
  EXPECT_THROW(rt.parallel_run(1, [&](rt::ThreadCtx& ctx) { ctx.lock(m); }),
               util::ContractViolation);
}

TEST(SamhitaRuntime, ViewAcrossLineBoundaryRejected) {
  SamhitaConfig cfg = test_config();
  SamhitaRuntime rt(cfg);
  EXPECT_THROW(rt.parallel_run(1,
                               [&](rt::ThreadCtx& ctx) {
                                 const rt::Addr a = ctx.alloc(2 * cfg.line_bytes());
                                 ctx.read_view(a + cfg.line_bytes() - 8, 16);
                               }),
               util::ContractViolation);
}

TEST(SamhitaRuntime, DeterministicTimingAcrossRuns) {
  auto run = [] {
    SamhitaRuntime rt(test_config());
    const auto m = rt.create_mutex();
    const auto b = rt.create_barrier(4);
    rt::Addr acc = 0;
    rt.parallel_run(4, [&](rt::ThreadCtx& ctx) {
      if (ctx.index() == 0) {
        acc = ctx.alloc(sizeof(double));
        ctx.write<double>(acc, 0.0);
      }
      ctx.barrier(b);
      ctx.begin_measurement();
      for (int i = 0; i < 5; ++i) {
        ctx.charge_flops(1000 * (ctx.index() + 1));
        ctx.lock(m);
        ctx.write<double>(acc, ctx.read<double>(acc) + 1);
        ctx.unlock(m);
        ctx.barrier(b);
      }
      ctx.end_measurement();
    });
    return std::make_pair(rt.elapsed_seconds(), rt.network_messages());
  };
  EXPECT_EQ(run(), run());
}

TEST(SamhitaRuntime, PlacementSpreadsThreadsAcrossNodes) {
  SamhitaConfig cfg;
  EXPECT_EQ(cfg.compute_node(0), cfg.memory_servers + 1);
  EXPECT_EQ(cfg.compute_node(7), cfg.memory_servers + 1);
  EXPECT_EQ(cfg.compute_node(8), cfg.memory_servers + 2);
  EXPECT_EQ(cfg.compute_node(31), cfg.memory_servers + 4);
}

}  // namespace
}  // namespace sam::core
