// Protocol-correctness sweep across the configuration matrix: every
// consistency/transport/cache variant must produce bit-identical functional
// results on a mixed workload (disjoint false-sharing writes + lock-protected
// read-modify-writes + barrier-published reads).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/samhita_runtime.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace sam::core {
namespace {

struct NamedConfig {
  std::string name;
  SamhitaConfig cfg;
};

std::vector<NamedConfig> config_matrix() {
  std::vector<NamedConfig> out;
  {
    NamedConfig c{"default", {}};
    out.push_back(c);
  }
  {
    NamedConfig c{"page_grain", {}};
    c.cfg.finegrain_updates = false;
    out.push_back(c);
  }
  {
    NamedConfig c{"local_sync_single_node", {}};
    c.cfg.compute_nodes = 1;
    c.cfg.local_sync = true;
    out.push_back(c);
  }
  {
    NamedConfig c{"pcie_proxy", {}};
    c.cfg.network = "pcie";
    out.push_back(c);
  }
  {
    NamedConfig c{"scif", {}};
    c.cfg.network = "scif";
    out.push_back(c);
  }
  {
    NamedConfig c{"tiny_cache", {}};
    c.cfg.cache_capacity_bytes = 3 * c.cfg.line_bytes();
    out.push_back(c);
  }
  {
    NamedConfig c{"no_prefetch", {}};
    c.cfg.prefetch_enabled = false;
    out.push_back(c);
  }
  {
    NamedConfig c{"single_page_lines", {}};
    c.cfg.pages_per_line = 1;
    out.push_back(c);
  }
  {
    NamedConfig c{"wide_lines", {}};
    c.cfg.pages_per_line = 8;
    out.push_back(c);
  }
  {
    NamedConfig c{"two_servers", {}};
    c.cfg.memory_servers = 2;
    out.push_back(c);
  }
  {
    NamedConfig c{"lru_eviction_small", {}};
    c.cfg.eviction = EvictionPolicy::kLru;
    c.cfg.cache_capacity_bytes = 3 * c.cfg.line_bytes();
    out.push_back(c);
  }
  {
    NamedConfig c{"page_grain_tiny_cache", {}};
    c.cfg.finegrain_updates = false;
    c.cfg.cache_capacity_bytes = 3 * c.cfg.line_bytes();
    out.push_back(c);
  }
  {
    // Debug validation mode: every barrier cross-checks clean cached lines
    // against authoritative memory — the strongest protocol check we have.
    NamedConfig c{"paranoid", {}};
    c.cfg.paranoid_checks = true;
    out.push_back(c);
  }
  {
    NamedConfig c{"paranoid_jitter", {}};
    c.cfg.paranoid_checks = true;
    c.cfg.network_jitter = 15'000;
    c.cfg.jitter_seed = 17;
    out.push_back(c);
  }
  {
    NamedConfig c{"sharded4", {}};
    c.cfg.manager_shards = 4;
    out.push_back(c);
  }
  {
    NamedConfig c{"sharded4_colocated", {}};
    c.cfg.manager_shards = 4;
    c.cfg.manager_placement = ManagerPlacement::kColocated;
    out.push_back(c);
  }
  {
    NamedConfig c{"sharded4_paranoid", {}};
    c.cfg.manager_shards = 4;
    c.cfg.paranoid_checks = true;
    out.push_back(c);
  }
  return out;
}

class ConfigMatrix : public ::testing::TestWithParam<NamedConfig> {};

INSTANTIATE_TEST_SUITE_P(AllConfigs, ConfigMatrix, ::testing::ValuesIn(config_matrix()),
                         [](const auto& info) { return info.param.name; });

TEST_P(ConfigMatrix, MixedWorkloadIsFunctionallyCorrect) {
  SamhitaRuntime runtime(GetParam().cfg);
  constexpr std::uint32_t kThreads = 4;
  constexpr std::size_t kSlots = 512;  // one page of doubles
  constexpr int kEpochs = 4;
  constexpr int kLockedIncrements = 12;

  const auto mtx = runtime.create_mutex();
  const auto bar = runtime.create_barrier(kThreads);
  rt::Addr slots = 0;
  rt::Addr counter = 0;
  bool reads_ok = true;

  runtime.parallel_run(kThreads, [&](rt::ThreadCtx& ctx) {
    const std::uint32_t me = ctx.index();
    if (me == 0) {
      slots = ctx.alloc_shared(kSlots * sizeof(double));
      counter = ctx.alloc_shared(sizeof(double));
      ctx.write<double>(counter, 0.0);
    }
    ctx.barrier(bar);
    for (int epoch = 1; epoch <= kEpochs; ++epoch) {
      // Disjoint strided writes: heavy false sharing within the page.
      for (std::size_t s = me; s < kSlots; s += kThreads) {
        ctx.write<double>(slots + s * sizeof(double), epoch * 1000.0 + s);
      }
      // Lock-protected increments interleaved with the ordinary writes.
      for (int i = 0; i < kLockedIncrements; ++i) {
        ctx.lock(mtx);
        ctx.write<double>(counter, ctx.read<double>(counter) + 1.0);
        ctx.unlock(mtx);
      }
      ctx.barrier(bar);
      // Everyone verifies everyone's writes after the barrier.
      for (std::size_t s = 0; s < kSlots; s += 13) {
        if (ctx.read<double>(slots + s * sizeof(double)) != epoch * 1000.0 + s) {
          reads_ok = false;
        }
      }
      ctx.barrier(bar);
    }
  });

  EXPECT_TRUE(reads_ok) << GetParam().name;
  const double total =
      runtime.read_global_array<double>(counter, 1)[0];
  EXPECT_DOUBLE_EQ(total, 1.0 * kThreads * kEpochs * kLockedIncrements)
      << GetParam().name;
  const auto final_slots = runtime.read_global_array<double>(slots, kSlots);
  for (std::size_t s = 0; s < kSlots; ++s) {
    ASSERT_DOUBLE_EQ(final_slots[s], kEpochs * 1000.0 + s)
        << GetParam().name << " slot " << s;
  }
}

TEST_P(ConfigMatrix, CondVarPipelineIsCorrect) {
  // One-slot mailbox: producer -> consumer through cond vars, every config.
  SamhitaRuntime runtime(GetParam().cfg);
  const auto mtx = runtime.create_mutex();
  const auto cv = runtime.create_cond();
  rt::Addr mailbox = 0;  // [value, full]
  double received_sum = 0;
  constexpr int kMessages = 20;

  runtime.parallel_run(2, [&](rt::ThreadCtx& ctx) {
    if (ctx.index() == 0) {
      mailbox = ctx.alloc_shared(2 * sizeof(double));
      ctx.write<double>(mailbox, 0.0);
      ctx.write<double>(mailbox + 8, 0.0);
      for (int i = 1; i <= kMessages; ++i) {
        ctx.lock(mtx);
        while (ctx.read<double>(mailbox + 8) != 0.0) ctx.cond_wait(cv, mtx);
        ctx.write<double>(mailbox, static_cast<double>(i));
        ctx.write<double>(mailbox + 8, 1.0);
        ctx.cond_broadcast(cv);
        ctx.unlock(mtx);
      }
    } else {
      ctx.charge_flops(1e6);  // let the producer set up the mailbox
      for (int i = 1; i <= kMessages; ++i) {
        ctx.lock(mtx);
        while (ctx.read<double>(mailbox + 8) != 1.0) ctx.cond_wait(cv, mtx);
        received_sum += ctx.read<double>(mailbox);
        ctx.write<double>(mailbox + 8, 0.0);
        ctx.cond_broadcast(cv);
        ctx.unlock(mtx);
      }
    }
  });
  EXPECT_DOUBLE_EQ(received_sum, kMessages * (kMessages + 1) / 2.0) << GetParam().name;
}

TEST_P(ConfigMatrix, DeterministicElapsedTime) {
  auto run = [&] {
    SamhitaRuntime runtime(GetParam().cfg);
    const auto bar = runtime.create_barrier(3);
    rt::Addr a = 0;
    runtime.parallel_run(3, [&](rt::ThreadCtx& ctx) {
      if (ctx.index() == 0) a = ctx.alloc_shared(4096);
      ctx.barrier(bar);
      ctx.begin_measurement();
      for (int i = 0; i < 3; ++i) {
        ctx.write<double>(a + ctx.index() * 8, i);
        ctx.charge_flops(100.0 * (ctx.index() + 1));
        ctx.barrier(bar);
      }
      ctx.end_measurement();
    });
    return runtime.elapsed_seconds();
  };
  EXPECT_EQ(run(), run()) << GetParam().name;
}

// ---------------------------------------------------------------------------
// Directed cross-shard sync: a barrier owned by shard 0 must correctly
// synchronize threads whose mutexes live on *other* shards (no shard-local
// shortcut may leak ordering).
// ---------------------------------------------------------------------------

TEST(ManagerSharding, BarrierOnShardZeroOrdersMutexesOnOtherShards) {
  SamhitaConfig cfg;
  cfg.manager_shards = 4;
  SamhitaRuntime runtime(cfg);
  constexpr std::uint32_t kThreads = 6;
  constexpr int kEpochs = 3;
  constexpr int kIncrements = 8;

  // Round-robin placement: first created object -> shard 0.
  const auto bar = runtime.create_barrier(kThreads);   // shard 0
  const auto mtx_a = runtime.create_mutex();           // shard 1
  const auto mtx_b = runtime.create_mutex();           // shard 2
  const auto mtx_c = runtime.create_mutex();           // shard 3
  ASSERT_EQ(runtime.services().barrier_shard_index(bar), 0u);
  ASSERT_EQ(runtime.services().mutex_shard_index(mtx_a), 1u);
  ASSERT_EQ(runtime.services().mutex_shard_index(mtx_b), 2u);
  ASSERT_EQ(runtime.services().mutex_shard_index(mtx_c), 3u);

  const rt::MutexId locks[] = {mtx_a, mtx_b, mtx_c};
  rt::Addr counters = 0;
  bool epochs_ok = true;

  runtime.parallel_run(kThreads, [&](rt::ThreadCtx& ctx) {
    const std::uint32_t me = ctx.index();
    if (me == 0) {
      counters = ctx.alloc_shared(3 * sizeof(double));
      for (int k = 0; k < 3; ++k) ctx.write<double>(counters + k * 8, 0.0);
    }
    ctx.barrier(bar);
    for (int epoch = 1; epoch <= kEpochs; ++epoch) {
      // Each thread hammers a lock on a non-zero shard...
      const int k = static_cast<int>(me) % 3;
      for (int i = 0; i < kIncrements; ++i) {
        ctx.lock(locks[k]);
        ctx.write<double>(counters + k * 8, ctx.read<double>(counters + k * 8) + 1.0);
        ctx.unlock(locks[k]);
      }
      // ...and the shard-0 barrier must publish all of it to everyone.
      ctx.barrier(bar);
      double sum = 0;
      for (int j = 0; j < 3; ++j) sum += ctx.read<double>(counters + j * 8);
      if (sum != 1.0 * kThreads * kIncrements * epoch) epochs_ok = false;
      ctx.barrier(bar);
    }
  });

  EXPECT_TRUE(epochs_ok);
  const auto final_counts = runtime.read_global_array<double>(counters, 3);
  EXPECT_DOUBLE_EQ(final_counts[0] + final_counts[1] + final_counts[2],
                   1.0 * kThreads * kIncrements * kEpochs);
  // Every shard actually serviced traffic.
  for (unsigned s = 0; s < 4; ++s) {
    EXPECT_GT(runtime.services().shard(s).service().request_count(), 0u) << "shard " << s;
  }
}

// ---------------------------------------------------------------------------
// Config validation: malformed knobs must fail fast at construction with a
// contract violation (which the CLI surfaces as a clear error), not crash
// mid-run.
// ---------------------------------------------------------------------------

TEST(ConfigValidation, RejectsOutOfRangeManagerShards) {
  SamhitaConfig cfg;
  cfg.manager_shards = 0;
  EXPECT_THROW(SamhitaRuntime{cfg}, util::ContractViolation);
  cfg.manager_shards = kMaxManagerShards + 1;
  EXPECT_THROW(SamhitaRuntime{cfg}, util::ContractViolation);
  cfg.manager_shards = kMaxManagerShards;  // boundary value is legal
  EXPECT_NO_THROW(SamhitaRuntime{cfg});
}

TEST(ConfigValidation, RejectsUnknownEnumStrings) {
  EXPECT_THROW(consistency_policy_from_string("write_through"), util::ContractViolation);
  EXPECT_THROW(manager_placement_from_string("spread"), util::ContractViolation);
  EXPECT_NO_THROW(consistency_policy_from_string("eager_rc"));
  EXPECT_NO_THROW(manager_placement_from_string("colocated"));
  EXPECT_THROW(page_placement_from_string("random"), util::ContractViolation);
  EXPECT_NO_THROW(page_placement_from_string("migrate+replicate"));
  EXPECT_NO_THROW(page_placement_from_string("migrate_replicate"));  // alias
}

TEST(ConfigValidation, RejectsTopologyAboveThreadSetCeiling) {
  SamhitaConfig cfg;
  cfg.compute_nodes = mem::kMaxThreads + 1;  // one thread too many
  cfg.cores_per_node = 1;
  EXPECT_THROW(SamhitaRuntime{cfg}, util::ContractViolation);
  cfg.compute_nodes = mem::kMaxThreads / 4;
  cfg.cores_per_node = 5;  // product above the ceiling
  EXPECT_THROW(SamhitaRuntime{cfg}, util::ContractViolation);
  cfg.cores_per_node = 4;  // exactly at the boundary is legal
  EXPECT_NO_THROW(SamhitaRuntime{cfg});
}

TEST(ConfigValidation, RejectsOutOfRangeReplicaServer) {
  SamhitaConfig cfg;
  cfg.replica_server = cfg.memory_servers;  // one past the last server
  EXPECT_THROW(SamhitaRuntime{cfg}, util::ContractViolation);
  cfg.replica_server = cfg.memory_servers - 1;  // boundary value is legal
  EXPECT_NO_THROW(SamhitaRuntime{cfg});
}

TEST(ConfigValidation, RejectsDegeneratePlacementKnobs) {
  SamhitaConfig cfg;
  cfg.placement_policy = PagePlacementPolicy::kMigrate;
  cfg.migration_threshold = 0;
  EXPECT_THROW(SamhitaRuntime{cfg}, util::ContractViolation);
  cfg = SamhitaConfig{};
  cfg.placement_policy = PagePlacementPolicy::kMigrateReplicate;
  cfg.memory_servers = 2;
  cfg.max_replicas = 2;  // would need 3 servers
  EXPECT_THROW(SamhitaRuntime{cfg}, util::ContractViolation);
  cfg.max_replicas = 1;
  EXPECT_NO_THROW(SamhitaRuntime{cfg});
  // The knobs are inert (unvalidated) under static placement.
  cfg = SamhitaConfig{};
  cfg.migration_threshold = 0;
  EXPECT_NO_THROW(SamhitaRuntime{cfg});
}

TEST(ConfigValidation, RejectsDegenerateTenantSpecs) {
  SamhitaConfig cfg;
  cfg.tenants = {{"a", 2, 1.0, 0}, {"b", 0, 1.0, 0}};  // zero-thread tenant
  EXPECT_THROW(SamhitaRuntime{cfg}, util::ContractViolation);
  cfg.tenants = {{"a", 2, 0.0, 0}};  // zero weight
  EXPECT_THROW(SamhitaRuntime{cfg}, util::ContractViolation);
  cfg.tenants = {{"a", 2, -1.5, 0}};  // negative weight
  EXPECT_THROW(SamhitaRuntime{cfg}, util::ContractViolation);
  cfg.tenants = {{"a", 2, 1.0, 0}, {"b", 2, 2.5, 4}};  // well-formed
  EXPECT_NO_THROW(SamhitaRuntime{cfg});
}

TEST(ConfigValidation, RejectsTenantThreadsAbovePlatformCapacity) {
  SamhitaConfig cfg;
  const unsigned cap = cfg.max_threads();
  cfg.tenants = {{"a", cap, 1.0, 0}, {"b", 1, 1.0, 0}};  // one over
  EXPECT_THROW(SamhitaRuntime{cfg}, util::ContractViolation);
  cfg.tenants = {{"a", cap - 1, 1.0, 0}, {"b", 1, 1.0, 0}};  // exactly at cap
  EXPECT_NO_THROW(SamhitaRuntime{cfg});
}

TEST(ConfigValidation, RejectsTenantPartitionBelowOneCacheLine) {
  SamhitaConfig cfg;
  // Two tenants over an address space of one cache line: each partition
  // would be half a line, so a line would straddle both tenants.
  cfg.address_space_bytes = cfg.line_bytes();
  cfg.tenants = {{"a", 1, 1.0, 0}, {"b", 1, 1.0, 0}};
  EXPECT_THROW(SamhitaRuntime{cfg}, util::ContractViolation);
  cfg.address_space_bytes = 2 * cfg.line_bytes();  // one line each is legal
  EXPECT_NO_THROW(SamhitaRuntime{cfg});
}

TEST(ConfigValidation, RejectsDegeneratePlatforms) {
  SamhitaConfig cfg;
  cfg.memory_servers = 0;
  EXPECT_THROW(SamhitaRuntime{cfg}, util::ContractViolation);
  cfg = SamhitaConfig{};
  cfg.compute_nodes = 0;
  EXPECT_THROW(SamhitaRuntime{cfg}, util::ContractViolation);
  cfg = SamhitaConfig{};
  cfg.cache_capacity_bytes = cfg.line_bytes() - 1;  // below one line
  EXPECT_THROW(SamhitaRuntime{cfg}, util::ContractViolation);
}

}  // namespace
}  // namespace sam::core
