// Timing-fault injection tests: the protocol's functional results must be
// invariant under arbitrary message-delivery jitter, because a DSM that
// gives different answers on a slow switch is not a DSM.
#include <gtest/gtest.h>

#include <vector>

#include "apps/jacobi.hpp"
#include "apps/microbench.hpp"
#include "core/samhita_runtime.hpp"
#include "net/perturbing_network.hpp"
#include "util/rng.hpp"

namespace sam {
namespace {

TEST(PerturbingNetwork, AddsBoundedDelay) {
  auto inner = net::make_network("ib", 3);
  net::IBFabricModel reference(3, net::IBFabricModel::qdr_defaults());
  net::PerturbingNetwork jittery(std::move(inner), 5000, 42);
  for (int i = 0; i < 200; ++i) {
    const SimTime base = reference.deliver(i * 100, 0, 1, 256);
    const SimTime perturbed = jittery.deliver(i * 100, 0, 1, 256);
    EXPECT_GE(perturbed, base);
    EXPECT_LE(perturbed, base + 5000);
  }
  EXPECT_EQ(jittery.name(), "ib-qdr+jitter");
  EXPECT_EQ(jittery.message_count(), 200u);
}

TEST(PerturbingNetwork, ZeroJitterIsTransparent) {
  auto inner = net::make_network("ib", 2);
  net::IBFabricModel reference(2, net::IBFabricModel::qdr_defaults());
  net::PerturbingNetwork wrapped(std::move(inner), 0, 1);
  EXPECT_EQ(wrapped.deliver(0, 0, 1, 64), reference.deliver(0, 0, 1, 64));
}

class JitterSweep : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, JitterSweep, ::testing::Range<std::uint64_t>(1, 6));

TEST_P(JitterSweep, MicrobenchResultInvariantUnderJitter) {
  apps::MicrobenchParams p;
  p.threads = 4;
  p.N = 4;
  p.M = 2;
  p.S = 2;
  p.B = 128;
  p.alloc = apps::MicrobenchAlloc::kGlobalStrided;  // heaviest protocol path

  core::SamhitaConfig clean_cfg;
  core::SamhitaRuntime clean_rt(clean_cfg);
  const auto clean = apps::run_microbench(clean_rt, p);

  core::SamhitaConfig cfg;
  cfg.network_jitter = 20'000;  // up to 20 us of extra delay per message
  cfg.jitter_seed = GetParam();
  core::SamhitaRuntime jittery_rt(cfg);
  const auto jittery = apps::run_microbench(jittery_rt, p);

  // Bit-identical functional result, different timing.
  EXPECT_EQ(clean.gsum, jittery.gsum);
  EXPECT_GT(jittery.elapsed_seconds, clean.elapsed_seconds);
}

TEST_P(JitterSweep, LockedCountersSerializeUnderJitter) {
  // Jitter perturbs lock grant order between threads; the total must hold.
  core::SamhitaConfig cfg;
  cfg.network_jitter = 50'000;
  cfg.jitter_seed = GetParam();
  core::SamhitaRuntime runtime(cfg);
  const auto m = runtime.create_mutex();
  const auto b = runtime.create_barrier(6);
  rt::Addr a = 0;
  runtime.parallel_run(6, [&](rt::ThreadCtx& ctx) {
    if (ctx.index() == 0) {
      a = ctx.alloc_shared(sizeof(double));
      ctx.write<double>(a, 0.0);
    }
    ctx.barrier(b);
    for (int i = 0; i < 20; ++i) {
      ctx.lock(m);
      ctx.write<double>(a, ctx.read<double>(a) + 1.0);
      ctx.unlock(m);
    }
    ctx.barrier(b);
  });
  EXPECT_DOUBLE_EQ(runtime.read_global_array<double>(a, 1)[0], 120.0);
}

TEST_P(JitterSweep, JacobiResidualInvariantUnderJitter) {
  apps::JacobiParams p;
  p.threads = 4;
  p.n = 24;
  p.iterations = 3;

  core::SamhitaConfig cfg;
  cfg.network_jitter = 10'000;
  cfg.jitter_seed = GetParam() * 7;
  core::SamhitaRuntime runtime(cfg);
  const auto r = apps::run_jacobi(runtime, p);
  EXPECT_DOUBLE_EQ(r.final_residual, apps::jacobi_reference_residual(p));
}

TEST(JitterSweep, SameSeedIsDeterministic) {
  auto run = [] {
    core::SamhitaConfig cfg;
    cfg.network_jitter = 10'000;
    cfg.jitter_seed = 99;
    core::SamhitaRuntime runtime(cfg);
    apps::MicrobenchParams p;
    p.threads = 3;
    p.N = 3;
    p.M = 2;
    p.S = 1;
    p.B = 64;
    const auto r = apps::run_microbench(runtime, p);
    return r.elapsed_seconds;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace sam
