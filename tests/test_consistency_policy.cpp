// ConsistencyPolicy seam tests: the eager-release baseline (EagerRCPolicy)
// must be functionally interchangeable with RegC — same answers from the
// same kernels — while exhibiting the protocol behaviour that motivates
// RegC in the first place: more data on the wire, no fine-grain update
// sets, wholesale page invalidation at acquires.
#include <gtest/gtest.h>

#include <cstdint>

#include "apps/jacobi.hpp"
#include "apps/md.hpp"
#include "apps/microbench.hpp"
#include "core/config.hpp"
#include "core/sam_thread_ctx.hpp"
#include "core/samhita_runtime.hpp"

namespace sam {
namespace {

core::SamhitaConfig with_policy(core::ConsistencyPolicyKind kind) {
  core::SamhitaConfig cfg;
  cfg.consistency_policy = kind;
  return cfg;
}

struct Traffic {
  std::uint64_t bytes_fetched = 0;
  std::uint64_t bytes_flushed = 0;
  std::uint64_t update_set_bytes = 0;
  std::uint64_t total() const { return bytes_fetched + bytes_flushed; }
};

Traffic traffic_of(const core::SamhitaRuntime& rt) {
  Traffic t;
  for (std::uint32_t i = 0; i < rt.ran_threads(); ++i) {
    const core::Metrics& m = rt.metrics(i);
    t.bytes_fetched += m.bytes_fetched;
    t.bytes_flushed += m.bytes_flushed;
    t.update_set_bytes += m.update_set_bytes;
  }
  return t;
}

TEST(ConsistencyPolicy, ConfigRoundTrip) {
  EXPECT_EQ(core::consistency_policy_from_string("regc"),
            core::ConsistencyPolicyKind::kRegC);
  EXPECT_EQ(core::consistency_policy_from_string("eager_rc"),
            core::ConsistencyPolicyKind::kEagerRC);
  EXPECT_EQ(core::consistency_policy_from_string("eager"),
            core::ConsistencyPolicyKind::kEagerRC);
  EXPECT_STREQ(core::to_string(core::ConsistencyPolicyKind::kRegC), "regc");
  EXPECT_STREQ(core::to_string(core::ConsistencyPolicyKind::kEagerRC), "eager_rc");
  EXPECT_THROW(core::consistency_policy_from_string("mesi"), std::exception);
}

TEST(ConsistencyPolicy, PolicyNamesAreWiredThrough) {
  const auto probe = [](core::ConsistencyPolicyKind kind, const char* want) {
    core::SamhitaRuntime rt(with_policy(kind));
    rt.parallel_run(2, [&](rt::ThreadCtx& ctx) {
      // policy() lives on the Samhita-specific context
      auto& sctx = dynamic_cast<core::SamThreadCtx&>(ctx);
      EXPECT_STREQ(sctx.policy().name(), want);
    });
  };
  probe(core::ConsistencyPolicyKind::kRegC, "regc");
  probe(core::ConsistencyPolicyKind::kEagerRC, "eager_rc");
}

// The paper's "trivial porting" claim holds across protocols: eager release
// consistency must compute the same jacobi residual as RegC.
TEST(ConsistencyPolicy, EagerRcMatchesRegcOnJacobi) {
  apps::JacobiParams p;
  p.threads = 4;
  p.n = 48;
  p.iterations = 4;
  core::SamhitaRuntime regc(with_policy(core::ConsistencyPolicyKind::kRegC));
  core::SamhitaRuntime eager(with_policy(core::ConsistencyPolicyKind::kEagerRC));
  const auto a = apps::run_jacobi(regc, p);
  const auto b = apps::run_jacobi(eager, p);
  EXPECT_EQ(a.final_residual, b.final_residual);
  EXPECT_EQ(a.final_residual, apps::jacobi_reference_residual(p));
}

// md exercises locks + condition-free reductions + barriers; the energies
// must agree bit-for-bit because both protocols are sequentially consistent
// at synchronization points.
TEST(ConsistencyPolicy, EagerRcMatchesRegcOnMd) {
  apps::MdParams p;
  p.threads = 4;
  p.particles = 96;
  p.steps = 2;
  core::SamhitaRuntime regc(with_policy(core::ConsistencyPolicyKind::kRegC));
  core::SamhitaRuntime eager(with_policy(core::ConsistencyPolicyKind::kEagerRC));
  const auto a = apps::run_md(regc, p);
  const auto b = apps::run_md(eager, p);
  EXPECT_EQ(a.potential, b.potential);
  EXPECT_EQ(a.kinetic, b.kinetic);
}

TEST(ConsistencyPolicy, EagerRcMatchesRegcOnStridedMicro) {
  apps::MicrobenchParams p;
  p.threads = 4;
  p.N = 4;
  p.M = 20;
  p.S = 2;
  p.B = 128;
  p.alloc = apps::MicrobenchAlloc::kGlobalStrided;
  core::SamhitaRuntime regc(with_policy(core::ConsistencyPolicyKind::kRegC));
  core::SamhitaRuntime eager(with_policy(core::ConsistencyPolicyKind::kEagerRC));
  EXPECT_EQ(apps::run_microbench(regc, p).gsum, apps::run_microbench(eager, p).gsum);
}

// Directed false-sharing workload: threads take turns mutating a few doubles
// of one lock-protected line. RegC ships just the touched bytes as update
// sets with the lock grant; EagerRC invalidates and refetches whole pages on
// every acquire, so it must move strictly more wire bytes — that gap IS the
// paper's argument for regional consistency.
TEST(ConsistencyPolicy, EagerRcShipsStrictlyMoreBytesUnderFalseSharing) {
  const auto run = [](core::ConsistencyPolicyKind kind) {
    core::SamhitaRuntime runtime(with_policy(kind));
    constexpr std::uint32_t kThreads = 4;
    constexpr int kRounds = 20;
    const auto m = runtime.create_mutex();
    const auto bar = runtime.create_barrier(kThreads);
    rt::Addr shared = 0;
    runtime.parallel_run(kThreads, [&](rt::ThreadCtx& ctx) {
      if (ctx.index() == 0) {
        shared = ctx.alloc_shared(16 * sizeof(double));
        for (int i = 0; i < 16; ++i) {
          ctx.write<double>(shared + i * sizeof(double), 0.0);
        }
      }
      ctx.barrier(bar);
      ctx.begin_measurement();
      for (int r = 0; r < kRounds; ++r) {
        ctx.lock(m);
        for (int i = 0; i < 4; ++i) {
          const rt::Addr a = shared + i * sizeof(double);
          ctx.write<double>(a, ctx.read<double>(a) + 1.0);
        }
        ctx.unlock(m);
        ctx.charge_flops(2000);
      }
      ctx.end_measurement();
      ctx.barrier(bar);
    });
    double sum = 0;
    for (const double v : runtime.read_global_array<double>(shared, 4)) sum += v;
    return std::make_pair(sum, traffic_of(runtime));
  };

  const auto [regc_sum, regc] = run(core::ConsistencyPolicyKind::kRegC);
  const auto [eager_sum, eager] = run(core::ConsistencyPolicyKind::kEagerRC);

  // Same answer...
  EXPECT_EQ(regc_sum, 4.0 * 4 * 20);
  EXPECT_EQ(eager_sum, regc_sum);
  // ...but eager pays for it in wire traffic, while RegC rides update sets.
  EXPECT_GT(eager.total(), regc.total());
  EXPECT_GT(regc.update_set_bytes, 0u);
  EXPECT_EQ(eager.update_set_bytes, 0u);
}

}  // namespace
}  // namespace sam
