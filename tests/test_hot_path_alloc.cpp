// Allocation-counting checks for the simulator's steady-state hot paths.
//
// The perf contract (docs/performance.md) is that per-event, per-line and
// per-diff-range work recycles pooled buffers instead of touching the heap.
// These tests pin that down with the pool/arena counters: warm the path up,
// snapshot the fresh-allocation counts, run the steady state, and require
// the counters not to move.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/config.hpp"
#include "core/page_cache.hpp"
#include "mem/page_directory.hpp"
#include "regc/diff.hpp"
#include "util/arena.hpp"

namespace sam {
namespace {

TEST(HotPathAlloc, VectorPoolRecyclesBuffers) {
  util::VectorPool<int> pool;
  std::vector<int> v = pool.acquire();
  v.resize(100);
  pool.release(std::move(v));
  for (int i = 0; i < 10; ++i) {
    std::vector<int> w = pool.acquire();
    EXPECT_GE(w.capacity(), 100u) << "recycled buffer lost its capacity";
    pool.release(std::move(w));
  }
  EXPECT_EQ(pool.stats().fresh, 1u);
  EXPECT_EQ(pool.stats().acquires, 11u);
  EXPECT_EQ(pool.stats().releases, 11u);
}

TEST(HotPathAlloc, DiffSteadyStateAllocatesNothing) {
  std::vector<std::byte> twin(4096, std::byte{0});
  std::vector<std::byte> cur = twin;
  for (std::size_t i = 128; i < 256; ++i) cur[i] = std::byte{0xAB};
  cur[1000] = std::byte{1};
  cur[4095] = std::byte{2};

  // Warm-up covers the peak number of simultaneously live diffs (one here)
  // and grows the pooled buffers to the working size.
  for (int i = 0; i < 4; ++i) {
    const regc::Diff d = regc::Diff::between(0, twin, cur);
    ASSERT_EQ(d.range_count(), 3u);
  }
  const std::uint64_t range_fresh = regc::Diff::range_pool_stats().fresh;
  const std::uint64_t payload_fresh = regc::Diff::payload_pool_stats().fresh;

  for (int i = 0; i < 1000; ++i) {
    const regc::Diff d = regc::Diff::between(0, twin, cur);
    ASSERT_FALSE(d.empty());
  }
  EXPECT_EQ(regc::Diff::range_pool_stats().fresh, range_fresh)
      << "diff construction allocated fresh range buffers in steady state";
  EXPECT_EQ(regc::Diff::payload_pool_stats().fresh, payload_fresh)
      << "diff construction allocated fresh payload buffers in steady state";
}

TEST(HotPathAlloc, PageCacheInstallEraseRecyclesFrames) {
  core::SamhitaConfig cfg;
  core::PageCache cache(&cfg, 0);
  for (core::LineId l = 0; l < 16; ++l) cache.install(l, 0, false);
  const std::size_t warm = cache.frames_allocated();

  core::LineId victim = 0;
  core::LineId next = 16;
  for (int i = 0; i < 1000; ++i) {
    cache.erase(victim++);
    core::PageCache::Line& line = cache.install(next++, 0, false);
    EXPECT_EQ(line.data.size(), cfg.line_bytes());
  }
  EXPECT_EQ(cache.frames_allocated(), warm)
      << "install/erase churn carved fresh frames instead of recycling";
  EXPECT_EQ(cache.resident_lines(), 16u);
}

TEST(HotPathAlloc, DirectorySpillChurnRecyclesThreadSetBuffers) {
  mem::PageDirectory d(nullptr);
  // Warm-up: touch every page's sets with a >=64 thread so each holds a
  // spill buffer, covering the peak simultaneously-live spilled sets.
  for (mem::PageId p = 0; p < 8; ++p) {
    d.note_cached(p, 100);
    d.note_write(p, 100);
    d.note_dirty(p, 100);
  }
  const std::uint64_t fresh = mem::ThreadSet::spill_pool_stats().fresh;

  for (int i = 0; i < 1000; ++i) {
    const mem::PageId p = static_cast<mem::PageId>(i % 8);
    const mem::ThreadIdx t = static_cast<mem::ThreadIdx>(64 + i % 128);
    d.note_cached(p, t);
    d.note_dirty(p, t);
    d.clear_dirty(p, t);
    d.note_evicted(p, t);
    // The epoch close hands the writer map out by value and starts a fresh
    // one; spill buffers of the snapshot's sets return to the pool when the
    // snapshot dies.
    d.note_write(p, t);
    if (i % 8 == 7) (void)d.end_epoch();
  }
  EXPECT_EQ(mem::ThreadSet::spill_pool_stats().fresh, fresh)
      << "directory steady state allocated fresh thread-set spill buffers";
}

}  // namespace
}  // namespace sam
