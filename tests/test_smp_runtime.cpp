// Unit tests for the SMP (Pthreads-baseline) runtime.
#include <gtest/gtest.h>

#include <vector>

#include "smp/coherence_model.hpp"
#include "smp/smp_runtime.hpp"

namespace sam::smp {
namespace {

TEST(CoherenceModel, FirstWriteIsFree) {
  CoherenceModel m;
  EXPECT_EQ(m.on_write(0, 0, 64), 0u);
  EXPECT_EQ(m.transfers(), 0u);
}

TEST(CoherenceModel, WriteAfterRemoteWriteCostsTransfer) {
  CoherenceModel m;
  m.on_write(0, 0, 8);
  const auto cost = m.on_write(1, 0, 8);
  EXPECT_EQ(cost, m.params().ownership_transfer);
  EXPECT_EQ(m.transfers(), 1u);
  // Now thread 1 owns it; rewriting is free.
  EXPECT_EQ(m.on_write(1, 0, 8), 0u);
}

TEST(CoherenceModel, ReadOfRemoteDirtyCostsShare) {
  CoherenceModel m;
  m.on_write(0, 128, 8);
  EXPECT_EQ(m.on_read(1, 128, 8), m.params().share_transfer);
  // Subsequent reads are free (line now shared).
  EXPECT_EQ(m.on_read(1, 128, 8), 0u);
  EXPECT_EQ(m.on_read(2, 128, 8), 0u);
  // Writing a shared line costs ownership again.
  EXPECT_GT(m.on_write(0, 128, 8), 0u);
}

TEST(CoherenceModel, MultiLineRangesChargePerLine) {
  CoherenceModel m;
  m.on_write(0, 0, 256);  // 4 lines
  const auto cost = m.on_write(1, 0, 256);
  EXPECT_EQ(cost, 4 * m.params().ownership_transfer);
}

TEST(SmpRuntime, SingleThreadComputeAccounting) {
  SmpRuntime rt;
  rt.create_mutex();
  rt.parallel_run(1, [](rt::ThreadCtx& ctx) {
    ctx.begin_measurement();
    ctx.charge_flops(2.8e9 * 2);  // exactly one second of flops
    ctx.end_measurement();
  });
  EXPECT_NEAR(rt.report(0).compute_seconds, 1.0, 1e-9);
  EXPECT_NEAR(rt.report(0).measured_seconds, 1.0, 1e-9);
  EXPECT_NEAR(rt.elapsed_seconds(), 1.0, 1e-9);
}

TEST(SmpRuntime, AllocAndViewsRoundTrip) {
  SmpRuntime rt;
  std::vector<double> result;
  rt.parallel_run(1, [&](rt::ThreadCtx& ctx) {
    const rt::Addr a = ctx.alloc(8 * sizeof(double));
    auto w = ctx.write_array<double>(a, 8);
    for (int i = 0; i < 8; ++i) w[i] = i * 1.5;
    auto r = ctx.read_array<double>(a, 8);
    result.assign(r.begin(), r.end());
  });
  ASSERT_EQ(result.size(), 8u);
  EXPECT_DOUBLE_EQ(result[7], 10.5);
}

TEST(SmpRuntime, MutexProvidesExclusionAndCounts) {
  SmpRuntime rt;
  const auto m = rt.create_mutex();
  int counter = 0;
  rt.parallel_run(4, [&](rt::ThreadCtx& ctx) {
    for (int i = 0; i < 100; ++i) {
      ctx.lock(m);
      ctx.charge_flops(100);  // dwell inside the critical section
      ++counter;
      ctx.unlock(m);
    }
  });
  EXPECT_EQ(counter, 400);
  // Contended locking shows up as sync time.
  double total_sync = 0;
  for (unsigned t = 0; t < 4; ++t) total_sync += rt.report(t).sync_seconds;
  EXPECT_GT(total_sync, 0.0);
}

TEST(SmpRuntime, BarrierAlignsClocks) {
  SmpRuntime rt;
  const auto b = rt.create_barrier(3);
  std::vector<SimTime> after(3);
  rt.parallel_run(3, [&](rt::ThreadCtx& ctx) {
    // Different amounts of pre-barrier work.
    ctx.charge_flops(1e6 * (ctx.index() + 1));
    ctx.barrier(b);
    after[ctx.index()] = ctx.now();
  });
  EXPECT_EQ(after[0], after[1]);
  EXPECT_EQ(after[1], after[2]);
}

TEST(SmpRuntime, CondVarSignalWakesWaiter) {
  SmpRuntime rt;
  const auto m = rt.create_mutex();
  const auto c = rt.create_cond();
  const auto b = rt.create_barrier(2);
  int stage = 0;
  rt.parallel_run(2, [&](rt::ThreadCtx& ctx) {
    if (ctx.index() == 0) {
      ctx.lock(m);
      while (stage == 0) ctx.cond_wait(c, m);
      EXPECT_EQ(stage, 1);
      stage = 2;
      ctx.unlock(m);
    } else {
      ctx.charge_flops(1e6);  // let the waiter park first
      ctx.lock(m);
      stage = 1;
      ctx.cond_signal(c);
      ctx.unlock(m);
    }
    ctx.barrier(b);
    EXPECT_EQ(stage, 2);
  });
}

TEST(SmpRuntime, FalseSharingInflatesComputeTime) {
  // Two threads alternately writing the same coherence line (interleaving
  // forced by barriers) vs writing separate lines: the shared line must
  // ping-pong ownership and inflate compute time.
  auto run = [](bool shared_line) {
    SmpRuntime rt;
    const auto b = rt.create_barrier(2);
    rt.parallel_run(2, [&, shared_line](rt::ThreadCtx& ctx) {
      rt::Addr base = 0;
      if (ctx.index() == 0) base = ctx.alloc(256);
      ctx.barrier(b);
      // alloc() starts the SMP heap at a fixed bump pointer, so both
      // threads can re-derive the base address deterministically.
      const rt::Addr mine = shared_line ? 64 + ctx.index() * 8 : 64 + ctx.index() * 128;
      ctx.begin_measurement();
      for (int i = 0; i < 100; ++i) {
        auto w = ctx.write_array<double>(mine, 1);
        w[0] = i;
        ctx.barrier(b);  // forces the two threads to interleave writes
      }
      ctx.end_measurement();
      (void)base;
    });
    return rt.mean_compute_seconds();
  };
  EXPECT_GT(run(true), 2 * run(false));
}

TEST(SmpRuntime, RejectsMoreThreadsThanCores) {
  SmpRuntime rt;
  EXPECT_ANY_THROW(rt.parallel_run(9, [](rt::ThreadCtx&) {}));
}

TEST(SmpRuntime, ReadGlobalSeesFinalState) {
  SmpRuntime rt;
  rt::Addr addr = 0;
  rt.parallel_run(1, [&](rt::ThreadCtx& ctx) {
    addr = ctx.alloc(sizeof(double));
    ctx.write<double>(addr, 3.5);
  });
  EXPECT_DOUBLE_EQ(rt.read_global_array<double>(addr, 1)[0], 3.5);
}

}  // namespace
}  // namespace sam::smp
