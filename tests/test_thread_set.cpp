// mem::ThreadSet unit + differential tests.
//
// ThreadSet is the directory's sharer-set representation: an inline 64-bit
// word for the common small case, spilling to a pooled fixed-span bitset
// when a thread index >= 64 appears. The differential tests drive a ThreadSet
// and a std::set<ThreadIdx> reference through the same random operation
// stream — deliberately straddling the inline->spill boundary — and require
// identical observable behavior at every step.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <vector>

#include "mem/thread_set.hpp"
#include "mem/types.hpp"
#include "util/expect.hpp"

namespace sam::mem {
namespace {

std::vector<ThreadIdx> to_vector(const ThreadSet& s) {
  std::vector<ThreadIdx> out;
  s.for_each([&](ThreadIdx t) { out.push_back(t); });
  return out;
}

TEST(ThreadSet, StartsEmpty) {
  ThreadSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_FALSE(s.contains(0));
  EXPECT_FALSE(s.contains_other_than(0));
  EXPECT_TRUE(to_vector(s).empty());
}

TEST(ThreadSet, InlineInsertEraseContains) {
  ThreadSet s;
  s.insert(3);
  s.insert(63);
  s.insert(3);  // idempotent
  EXPECT_EQ(s.count(), 2u);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(63));
  EXPECT_FALSE(s.contains(4));
  EXPECT_TRUE(s.contains_other_than(3));
  s.erase(3);
  EXPECT_FALSE(s.contains(3));
  EXPECT_FALSE(s.contains_other_than(63));
  s.erase(3);  // idempotent
  EXPECT_EQ(s.count(), 1u);
}

TEST(ThreadSet, SpillsAboveSixtyFourAndIteratesAscending) {
  ThreadSet s;
  s.insert(200);
  s.insert(5);
  s.insert(64);
  s.insert(kMaxThreads - 1);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_EQ(to_vector(s),
            (std::vector<ThreadIdx>{5, 64, 200, kMaxThreads - 1}));
  s.erase(64);
  EXPECT_EQ(to_vector(s), (std::vector<ThreadIdx>{5, 200, kMaxThreads - 1}));
}

TEST(ThreadSet, RejectsIndexAtSetWidth) {
  ThreadSet s;
  s.insert(kMaxThreads - 1);  // largest representable index
  EXPECT_THROW(s.insert(kMaxThreads), util::ContractViolation);
}

TEST(ThreadSet, EqualityIgnoresSpillRepresentation) {
  // a spilled once (then shrank back under 64); b never spilled. Equality
  // must compare contents, not whether a spill buffer is attached.
  ThreadSet a;
  a.insert(10);
  a.insert(100);
  a.erase(100);
  ThreadSet b = ThreadSet::of(10);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, a);
  a.insert(100);
  EXPECT_NE(a, b);
}

TEST(ThreadSet, CopyAndMovePreserveContents) {
  ThreadSet a;
  a.insert(1);
  a.insert(400);
  ThreadSet copy = a;
  EXPECT_EQ(copy, a);
  copy.insert(2);
  EXPECT_FALSE(a.contains(2));  // deep copy
  ThreadSet moved = std::move(a);
  EXPECT_TRUE(moved.contains(400));
  ThreadSet assigned;
  assigned = copy;
  EXPECT_EQ(assigned, copy);
  assigned = std::move(moved);
  EXPECT_TRUE(assigned.contains(400));
  EXPECT_FALSE(assigned.contains(2));
}

TEST(ThreadSet, InsertAllMergesAndIntersects) {
  ThreadSet a;
  a.insert(3);
  a.insert(70);
  ThreadSet b;
  b.insert(70);
  b.insert(300);
  EXPECT_TRUE(a.intersects(b));
  a.insert_all(b);
  EXPECT_EQ(to_vector(a), (std::vector<ThreadIdx>{3, 70, 300}));
  ThreadSet c = ThreadSet::of(4);
  EXPECT_FALSE(a.intersects(c));
  EXPECT_FALSE(c.intersects(a));
}

// The load-bearing check: drive ThreadSet and std::set through the same
// random insert/erase/query stream, with an index distribution that keeps
// crossing the inline/spill boundary, and compare every observable.
TEST(ThreadSet, DifferentialAgainstStdSetAcrossSpillBoundary) {
  std::mt19937_64 rng(0xD15C0);
  // Cluster mass just below and above the 64-thread inline word so sets
  // repeatedly straddle it, plus a tail over the full [0, kMaxThreads) span.
  auto random_index = [&]() -> ThreadIdx {
    switch (rng() % 3) {
      case 0: return static_cast<ThreadIdx>(rng() % 64);
      case 1: return static_cast<ThreadIdx>(64 + rng() % 8);
      default: return static_cast<ThreadIdx>(rng() % kMaxThreads);
    }
  };
  for (int trial = 0; trial < 20; ++trial) {
    ThreadSet set;
    std::set<ThreadIdx> ref;
    for (int step = 0; step < 400; ++step) {
      const ThreadIdx t = random_index();
      if (rng() % 3 != 0) {
        set.insert(t);
        ref.insert(t);
      } else {
        set.erase(t);
        ref.erase(t);
      }
      ASSERT_EQ(set.count(), ref.size());
      ASSERT_EQ(set.empty(), ref.empty());
      const ThreadIdx probe = random_index();
      ASSERT_EQ(set.contains(probe), ref.count(probe) > 0);
      ASSERT_EQ(set.contains_other_than(probe),
                ref.size() > (ref.count(probe) > 0 ? 1u : 0u));
      // for_each visits exactly the reference contents, ascending.
      ASSERT_EQ(to_vector(set),
                std::vector<ThreadIdx>(ref.begin(), ref.end()));
    }
    // Cross-set ops against a second differential pair.
    ThreadSet other;
    std::set<ThreadIdx> other_ref;
    for (int i = 0; i < 40; ++i) {
      const ThreadIdx t = random_index();
      other.insert(t);
      other_ref.insert(t);
    }
    std::vector<ThreadIdx> inter;
    std::set_intersection(ref.begin(), ref.end(), other_ref.begin(),
                          other_ref.end(), std::back_inserter(inter));
    ASSERT_EQ(set.intersects(other), !inter.empty());
    set.insert_all(other);
    ref.insert(other_ref.begin(), other_ref.end());
    ASSERT_EQ(to_vector(set), std::vector<ThreadIdx>(ref.begin(), ref.end()));
    set.clear();
    ASSERT_TRUE(set.empty());
    ASSERT_EQ(set, ThreadSet{});
  }
}

// Steady-state spill churn must recycle pooled buffers, not carve fresh
// ones (same contract as the diff/page-cache pools in test_hot_path_alloc).
TEST(ThreadSet, SpillChurnAllocatesNothingInSteadyState) {
  // Warm-up: grow the thread-local pool to the peak number of
  // simultaneously live spilled sets the loop below holds (two).
  {
    ThreadSet a = ThreadSet::of(100);
    ThreadSet b = ThreadSet::of(200);
    b.insert_all(a);
  }
  const std::uint64_t fresh = ThreadSet::spill_pool_stats().fresh;
  for (int i = 0; i < 1000; ++i) {
    ThreadSet a;
    a.insert(static_cast<ThreadIdx>(64 + i % 100));  // forces a spill
    ThreadSet b = a;                                 // copies the spill
    b.erase(static_cast<ThreadIdx>(64 + i % 100));
    ASSERT_TRUE(b.empty());
  }
  EXPECT_EQ(ThreadSet::spill_pool_stats().fresh, fresh)
      << "spilled-set churn allocated fresh spill buffers in steady state";
}

}  // namespace
}  // namespace sam::mem
