// Adversarial / edge-case protocol tests: cache pressure inside critical
// sections, nested locks, update-window garbage collection, lazy-pull paths,
// multiple mutexes, placement variants.
#include <gtest/gtest.h>

#include <vector>

#include "core/samhita_runtime.hpp"
#include "util/expect.hpp"

namespace sam::core {
namespace {

TEST(ProtocolEdge, StoreLogPinsSurviveCachePressure) {
  // A critical section that writes more lines than the cache holds: pinned
  // lines must survive (capacity temporarily exceeded) and the update set
  // must materialize correctly at unlock.
  SamhitaConfig cfg;
  cfg.cache_capacity_bytes = 2 * cfg.line_bytes();  // two lines
  SamhitaRuntime runtime(cfg);
  const auto m = runtime.create_mutex();
  rt::Addr a = 0;
  const std::size_t lines = 5;
  runtime.parallel_run(1, [&](rt::ThreadCtx& ctx) {
    a = ctx.alloc_shared(lines * cfg.line_bytes());
    ctx.lock(m);
    for (std::size_t l = 0; l < lines; ++l) {
      ctx.write<double>(a + l * cfg.line_bytes(), static_cast<double>(l + 1));
    }
    ctx.unlock(m);
  });
  for (std::size_t l = 0; l < lines; ++l) {
    EXPECT_DOUBLE_EQ(
        runtime.read_global_array<double>(a + l * cfg.line_bytes(), 1)[0],
        static_cast<double>(l + 1));
  }
}

TEST(ProtocolEdge, NestedLocksPropagateUpdates) {
  SamhitaRuntime runtime;
  const auto outer = runtime.create_mutex();
  const auto inner = runtime.create_mutex();
  const auto b = runtime.create_barrier(2);
  rt::Addr a = 0;
  double seen = -1;
  runtime.parallel_run(2, [&](rt::ThreadCtx& ctx) {
    if (ctx.index() == 0) {
      a = ctx.alloc_shared(2 * sizeof(double));
      ctx.lock(outer);
      ctx.lock(inner);
      ctx.write<double>(a, 11.0);
      ctx.unlock(inner);  // LIFO order required
      ctx.write<double>(a + 8, 22.0);
      ctx.unlock(outer);
      ctx.barrier(b);
    } else {
      ctx.barrier(b);
      ctx.lock(outer);
      seen = ctx.read<double>(a) + ctx.read<double>(a + 8);
      ctx.unlock(outer);
    }
  });
  EXPECT_DOUBLE_EQ(seen, 33.0);
}

TEST(ProtocolEdge, NonLifoUnlockRejected) {
  SamhitaRuntime runtime;
  const auto m1 = runtime.create_mutex();
  const auto m2 = runtime.create_mutex();
  EXPECT_THROW(runtime.parallel_run(1,
                                    [&](rt::ThreadCtx& ctx) {
                                      ctx.lock(m1);
                                      ctx.lock(m2);
                                      ctx.unlock(m1);  // violates LIFO
                                    }),
               util::ContractViolation);
}

TEST(ProtocolEdge, UpdateWindowIsGarbageCollected) {
  SamhitaRuntime runtime;
  const auto m = runtime.create_mutex();
  const auto b = runtime.create_barrier(4);
  rt::Addr a = 0;
  runtime.parallel_run(4, [&](rt::ThreadCtx& ctx) {
    if (ctx.index() == 0) {
      a = ctx.alloc_shared(sizeof(double));
      ctx.write<double>(a, 0.0);
    }
    ctx.barrier(b);
    // Long lock ping-pong: without GC the window would hold ~400 sets.
    for (int i = 0; i < 100; ++i) {
      ctx.lock(m);
      ctx.write<double>(a, ctx.read<double>(a) + 1.0);
      ctx.unlock(m);
    }
    ctx.barrier(b);
  });
  EXPECT_DOUBLE_EQ(runtime.read_global_array<double>(a, 1)[0], 400.0);
  // The window is bounded by what the laggard thread has not yet seen.
  // (Access the manager state through a fresh acquisition count instead of
  // poking internals: the functional check above plus determinism suffice;
  // the structural bound is asserted via the public trim contract.)
}

TEST(ProtocolEdge, TwoMutexesCarryIndependentUpdates) {
  SamhitaRuntime runtime;
  const auto ma = runtime.create_mutex();
  const auto mb = runtime.create_mutex();
  const auto b = runtime.create_barrier(2);
  rt::Addr cells = 0;
  double got_a = -1, got_b = -1;
  runtime.parallel_run(2, [&](rt::ThreadCtx& ctx) {
    if (ctx.index() == 0) {
      cells = ctx.alloc_shared(2 * sizeof(double));
      ctx.lock(ma);
      ctx.write<double>(cells, 1.5);
      ctx.unlock(ma);
      ctx.lock(mb);
      ctx.write<double>(cells + 8, 2.5);
      ctx.unlock(mb);
      ctx.barrier(b);
    } else {
      ctx.barrier(b);
      ctx.lock(ma);
      got_a = ctx.read<double>(cells);
      ctx.unlock(ma);
      ctx.lock(mb);
      got_b = ctx.read<double>(cells + 8);
      ctx.unlock(mb);
    }
  });
  EXPECT_DOUBLE_EQ(got_a, 1.5);
  EXPECT_DOUBLE_EQ(got_b, 2.5);
}

TEST(ProtocolEdge, LazyPullServesUnflushedData) {
  // Thread 0 writes a large private region and never shares it before the
  // barrier (nobody caches it -> no barrier flush). Thread 1 then reads it:
  // the demand fetch must pull thread 0's diffs.
  SamhitaRuntime runtime;
  const auto b = runtime.create_barrier(2);
  rt::Addr a = 0;
  double seen = -1;
  runtime.parallel_run(2, [&](rt::ThreadCtx& ctx) {
    if (ctx.index() == 0) {
      a = ctx.alloc_shared(1 << 16);
      ctx.write<double>(a + 4096, 77.0);
    }
    ctx.barrier(b);
    if (ctx.index() == 1) {
      seen = ctx.read<double>(a + 4096);
    }
    ctx.barrier(b);
  });
  EXPECT_DOUBLE_EQ(seen, 77.0);
  // The flush should have happened via the lazy-pull path, charged as a
  // diff on thread 0's ledger but triggered by thread 1's miss.
  EXPECT_GT(runtime.metrics(0).bytes_flushed, 0u);
}

TEST(ProtocolEdge, UnsharedDirtyDataIsNeverFlushedEagerly) {
  // Single thread writing its own region: barriers must not ship any data
  // (the "minimum data moved" property that makes 1-thread Jacobi track
  // Pthreads).
  SamhitaRuntime runtime;
  const auto b = runtime.create_barrier(1);
  runtime.parallel_run(1, [&](rt::ThreadCtx& ctx) {
    const rt::Addr a = ctx.alloc(1 << 16);
    for (int epoch = 0; epoch < 5; ++epoch) {
      for (std::size_t off = 0; off < (1 << 16); off += 4096) {
        ctx.write<double>(a + off, epoch);
      }
      ctx.barrier(b);
    }
  });
  EXPECT_EQ(runtime.metrics(0).bytes_flushed, 0u);
  EXPECT_EQ(runtime.metrics(0).diffs_flushed, 0u);
}

TEST(ProtocolEdge, ScatterPlacementIsFunctionallyIdentical) {
  auto run = [](Placement placement) {
    SamhitaConfig cfg;
    cfg.placement = placement;
    SamhitaRuntime runtime(cfg);
    const auto m = runtime.create_mutex();
    const auto b = runtime.create_barrier(6);
    rt::Addr a = 0;
    runtime.parallel_run(6, [&](rt::ThreadCtx& ctx) {
      if (ctx.index() == 0) {
        a = ctx.alloc_shared(sizeof(double));
        ctx.write<double>(a, 0.0);
      }
      ctx.barrier(b);
      for (int i = 0; i < 10; ++i) {
        ctx.lock(m);
        ctx.write<double>(a, ctx.read<double>(a) + 1.0);
        ctx.unlock(m);
      }
      ctx.barrier(b);
    });
    return runtime.read_global_array<double>(a, 1)[0];
  };
  EXPECT_DOUBLE_EQ(run(Placement::kBlock), 60.0);
  EXPECT_DOUBLE_EQ(run(Placement::kScatter), 60.0);
}

TEST(ProtocolEdge, EvictionInsideConsistencyRegionKeepsPins) {
  // Fill the cache with streaming reads while a critical section holds
  // store-log pins on other lines; the pinned lines must not be victims.
  SamhitaConfig cfg;
  cfg.cache_capacity_bytes = 4 * cfg.line_bytes();
  SamhitaRuntime runtime(cfg);
  const auto m = runtime.create_mutex();
  rt::Addr hot = 0, stream = 0;
  runtime.parallel_run(1, [&](rt::ThreadCtx& ctx) {
    hot = ctx.alloc_shared(cfg.line_bytes());
    stream = ctx.alloc_shared(16 * cfg.line_bytes());
    ctx.lock(m);
    ctx.write<double>(hot, 3.25);  // pinned by the store log
    double acc = 0;
    for (std::size_t l = 0; l < 16; ++l) {
      acc += ctx.read<double>(stream + l * cfg.line_bytes());
    }
    // The pinned value must still be readable from the local cache.
    EXPECT_DOUBLE_EQ(ctx.read<double>(hot), 3.25);
    ctx.unlock(m);
    (void)acc;
  });
  EXPECT_DOUBLE_EQ(runtime.read_global_array<double>(hot, 1)[0], 3.25);
  EXPECT_GT(runtime.metrics(0).evictions, 0u);
}

TEST(ProtocolEdge, ReadGlobalBeforeRunThrows) {
  SamhitaRuntime runtime;
  std::byte buf[8];
  // Address 0 has no home until something is allocated.
  EXPECT_THROW(runtime.read_global(0, buf, 8), util::ContractViolation);
}

}  // namespace
}  // namespace sam::core
