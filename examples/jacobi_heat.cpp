// Jacobi heat-plate example: the paper's nearest-neighbour kernel (Fig. 12
// workload) solved on the virtual shared memory, with a side-by-side
// comparison against the Pthreads baseline and a residual check against the
// sequential reference.
//
// Usage: ./build/examples/jacobi_heat [--n=256] [--iters=20] [--threads=8]
#include <cstdio>

#include "apps/jacobi.hpp"
#include "core/samhita_runtime.hpp"
#include "smp/smp_runtime.hpp"
#include "util/arg_parser.hpp"

int main(int argc, char** argv) {
  using namespace sam;
  util::ArgParser args(argc, argv);
  apps::JacobiParams p;
  p.n = static_cast<std::uint32_t>(args.get_int("n", 256));
  p.iterations = static_cast<std::uint32_t>(args.get_int("iters", 20));
  p.threads = static_cast<std::uint32_t>(args.get_int("threads", 8));

  std::printf("Jacobi: %ux%u grid, %u iterations, %u threads\n\n", p.n, p.n,
              p.iterations, p.threads);

  const double reference = apps::jacobi_reference_residual(p);

  core::SamhitaRuntime dsm;
  const auto smh = apps::run_jacobi(dsm, p);

  smp::SmpRuntime smp;
  const auto pth = apps::run_jacobi(smp, p);

  std::printf("%-10s %14s %14s %14s\n", "runtime", "elapsed(ms)", "compute(ms)",
              "sync(ms)");
  std::printf("%-10s %14.3f %14.3f %14.3f\n", "samhita", smh.elapsed_seconds * 1e3,
              smh.mean_compute_seconds * 1e3, smh.mean_sync_seconds * 1e3);
  std::printf("%-10s %14.3f %14.3f %14.3f\n\n", "pthreads", pth.elapsed_seconds * 1e3,
              pth.mean_compute_seconds * 1e3, pth.mean_sync_seconds * 1e3);

  std::printf("residuals: samhita=%.12g pthreads=%.12g reference=%.12g\n",
              smh.final_residual, pth.final_residual, reference);
  const bool ok = std::abs(smh.final_residual - reference) <
                      1e-9 * std::abs(reference) + 1e-15 &&
                  std::abs(pth.final_residual - reference) <
                      1e-9 * std::abs(reference) + 1e-15;
  std::printf("verification: %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
