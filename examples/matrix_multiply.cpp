// Matrix-multiply example: read-mostly sharing on the DSM.
//
// Every thread reads all of B, so B replicates read-only into every software
// cache — fetched once over the interconnect, hit locally forever after.
// Contrast with the false-sharing micro-benchmark: this is the sharing
// pattern where virtual shared memory shines, and the per-thread statistics
// printed below show why (bytes fetched ≈ one copy of the inputs, zero
// invalidations).
//
// Usage: ./build/examples/matrix_multiply [--n=128] [--threads=8]
#include <cmath>
#include <cstdio>

#include "apps/matmul.hpp"
#include "core/samhita_runtime.hpp"
#include "smp/smp_runtime.hpp"
#include "util/arg_parser.hpp"

int main(int argc, char** argv) {
  using namespace sam;
  util::ArgParser args(argc, argv);
  apps::MatmulParams p;
  p.n = static_cast<std::uint32_t>(args.get_int("n", 128));
  p.threads = static_cast<std::uint32_t>(args.get_int("threads", 8));

  std::printf("matmul: C = A*B, %ux%u, %u threads\n\n", p.n, p.n, p.threads);

  core::SamhitaRuntime dsm;
  const auto smh = apps::run_matmul(dsm, p);
  smp::SmpRuntime smp;
  const auto pth = apps::run_matmul(smp, p);
  const double ref = apps::matmul_reference_checksum(p);

  std::printf("%-10s %14s %14s %14s\n", "runtime", "elapsed(ms)", "compute(ms)",
              "sync(ms)");
  std::printf("%-10s %14.3f %14.3f %14.3f\n", "samhita", smh.elapsed_seconds * 1e3,
              smh.mean_compute_seconds * 1e3, smh.mean_sync_seconds * 1e3);
  std::printf("%-10s %14.3f %14.3f %14.3f\n\n", "pthreads", pth.elapsed_seconds * 1e3,
              pth.mean_compute_seconds * 1e3, pth.mean_sync_seconds * 1e3);

  std::uint64_t fetched = 0, invalidations = 0, hits = 0, misses = 0;
  for (std::uint32_t t = 0; t < dsm.ran_threads(); ++t) {
    fetched += dsm.metrics(t).bytes_fetched;
    invalidations += dsm.metrics(t).invalidations;
    hits += dsm.metrics(t).cache_hits;
    misses += dsm.metrics(t).cache_misses;
  }
  std::printf("DSM protocol: %.2f MiB fetched total, %llu invalidations, "
              "hit rate %.2f%%\n",
              static_cast<double>(fetched) / (1 << 20),
              static_cast<unsigned long long>(invalidations),
              100.0 * static_cast<double>(hits) / static_cast<double>(hits + misses));

  std::printf("checksums: samhita=%.6f pthreads=%.6f reference=%.6f\n", smh.checksum,
              pth.checksum, ref);
  const bool ok = std::abs(smh.checksum - ref) < 1e-9 * std::abs(ref) &&
                  std::abs(pth.checksum - ref) < 1e-9 * std::abs(ref);
  std::printf("verification: %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
