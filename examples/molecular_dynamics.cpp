// Molecular dynamics example: velocity-Verlet n-body on virtual shared
// memory (the paper's Fig. 13 workload), with per-thread protocol statistics
// and an energy check against the sequential reference.
//
// Usage: ./build/examples/molecular_dynamics [--particles=512] [--steps=4]
//                                            [--threads=16]
#include <cmath>
#include <cstdio>

#include "apps/md.hpp"
#include "core/samhita_runtime.hpp"
#include "util/arg_parser.hpp"

int main(int argc, char** argv) {
  using namespace sam;
  util::ArgParser args(argc, argv);
  apps::MdParams p;
  p.particles = static_cast<std::uint32_t>(args.get_int("particles", 512));
  p.steps = static_cast<std::uint32_t>(args.get_int("steps", 4));
  p.threads = static_cast<std::uint32_t>(args.get_int("threads", 16));

  std::printf("MD: %u particles, %u velocity-Verlet steps, %u threads on the DSM\n\n",
              p.particles, p.steps, p.threads);

  core::SamhitaRuntime runtime;
  const auto r = apps::run_md(runtime, p);
  const auto ref = apps::md_reference(p);

  std::printf("elapsed (virtual): %.3f ms   compute: %.3f ms   sync: %.3f ms\n\n",
              r.elapsed_seconds * 1e3, r.mean_compute_seconds * 1e3,
              r.mean_sync_seconds * 1e3);

  std::printf("%-8s %10s %10s %12s %12s %12s\n", "thread", "misses", "prefetch",
              "fetched(KiB)", "flushed(KiB)", "updates(B)");
  for (std::uint32_t t = 0; t < runtime.ran_threads(); ++t) {
    const auto& m = runtime.metrics(t);
    std::printf("%-8u %10llu %10llu %12.1f %12.1f %12llu\n", t,
                static_cast<unsigned long long>(m.cache_misses),
                static_cast<unsigned long long>(m.prefetch_hits),
                static_cast<double>(m.bytes_fetched) / 1024.0,
                static_cast<double>(m.bytes_flushed) / 1024.0,
                static_cast<unsigned long long>(m.update_set_bytes));
  }

  std::printf("\nenergy:   potential=%.6f  kinetic=%.6g\n", r.potential, r.kinetic);
  std::printf("reference: potential=%.6f  kinetic=%.6g\n", ref.potential, ref.kinetic);
  const bool ok =
      std::abs(r.potential - ref.potential) < 1e-8 * std::abs(ref.potential) + 1e-12;
  std::printf("verification: %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
