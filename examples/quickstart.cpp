// Quickstart: the Samhita programming model in one file.
//
// Written entirely against the sam::api facade — the paper's API table
// (sam_alloc, sam_lock, sam_barrier, ...) and nothing else. Allocates
// shared memory in the global address space, runs eight compute threads
// that fill a shared array and accumulate a sum under a mutex, and prints
// where the virtual time went. The same body also runs unchanged on the
// Pthreads baseline — the paper's "trivial porting" claim.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "api/sam_api.hpp"

namespace {

using namespace sam::api;

constexpr std::uint32_t kThreads = 8;
constexpr std::size_t kElems = 1 << 16;  // 512 KiB of shared doubles

struct Shared {
  Addr data = 0;
  Addr sum = 0;
};

/// The portable parallel region: identical on Samhita and Pthreads.
void body(ThreadCtx& ctx, Shared& sh, MutexId mtx, BarrierId bar) {
  const std::uint32_t me = sam_thread_index(ctx);
  const std::size_t chunk = kElems / sam_nthreads(ctx);
  const std::size_t lo = me * chunk;

  if (me == 0) {
    sh.data = sam_alloc_shared(ctx, kElems * sizeof(double));
    sh.sum = sam_alloc_shared(ctx, sizeof(double));
    sam_write<double>(ctx, sh.sum, 0.0);
  }
  sam_barrier(ctx, bar);  // publish the allocations

  sam_begin_measurement(ctx);
  // Each thread fills its slice of the shared array (ordinary region:
  // page-granularity consistency via twins/diffs at the barrier).
  double local = 0.0;
  sam_for_each_write<double>(ctx, sh.data + lo * sizeof(double), chunk,
                             [&](std::span<double> out, std::size_t at) {
                               for (std::size_t i = 0; i < out.size(); ++i) {
                                 out[i] = static_cast<double>(lo + at + i);
                                 local += out[i];
                               }
                             });
  sam_charge_flops(ctx, static_cast<double>(chunk));
  sam_charge_mem_ops(ctx, 0, chunk);

  // Mutex-protected accumulation (consistency region: the stores are
  // propagated fine-grain with the lock, RegC-style).
  sam_lock(ctx, mtx);
  sam_write<double>(ctx, sh.sum, sam_read<double>(ctx, sh.sum) + local);
  sam_unlock(ctx, mtx);

  sam_barrier(ctx, bar);  // global consistency point
  sam_end_measurement(ctx);
}

void run_on(Runtime& runtime) {
  Shared sh;
  const MutexId mtx = sam_mutex_init(runtime);
  const BarrierId bar = sam_barrier_init(runtime, kThreads);
  sam_threads(runtime, kThreads, [&](ThreadCtx& ctx) { body(ctx, sh, mtx, bar); });

  const double sum = sam_read_global_array<double>(runtime, sh.sum, 1)[0];
  const double expect = static_cast<double>(kElems) * (kElems - 1) / 2.0;
  std::printf("[%s]\n", runtime.name().c_str());
  std::printf("  shared sum        = %.0f (expected %.0f) %s\n", sum, expect,
              sum == expect ? "OK" : "MISMATCH");
  std::printf("  elapsed (virtual) = %.3f ms\n", sam_elapsed_seconds(runtime) * 1e3);
  std::printf("  mean compute      = %.3f ms\n", sam_mean_compute_seconds(runtime) * 1e3);
  std::printf("  mean sync         = %.3f ms\n\n", sam_mean_sync_seconds(runtime) * 1e3);
}

}  // namespace

int main() {
  std::printf("Samhita quickstart: %u threads filling %zu shared doubles\n\n", kThreads,
              kElems);
  run_on(*make_samhita_runtime());   // the DSM over the simulated cluster
  run_on(*make_pthreads_runtime());  // the cache-coherent baseline
  return 0;
}
