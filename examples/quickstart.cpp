// Quickstart: the Samhita programming model in one file.
//
// Allocates shared memory in the global address space, runs eight compute
// threads that fill a shared array and accumulate a sum under a mutex, and
// prints where the virtual time went. The same body also runs unchanged on
// the Pthreads baseline — the paper's "trivial porting" claim.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "core/samhita_runtime.hpp"
#include "rt/span_util.hpp"
#include "smp/smp_runtime.hpp"

namespace {

constexpr std::uint32_t kThreads = 8;
constexpr std::size_t kElems = 1 << 16;  // 512 KiB of shared doubles

struct Shared {
  sam::rt::Addr data = 0;
  sam::rt::Addr sum = 0;
};

/// The portable parallel region: identical on Samhita and Pthreads.
void body(sam::rt::ThreadCtx& ctx, Shared& sh, sam::rt::MutexId mtx,
          sam::rt::BarrierId bar) {
  using namespace sam;
  const std::uint32_t me = ctx.index();
  const std::size_t chunk = kElems / ctx.nthreads();
  const std::size_t lo = me * chunk;

  if (me == 0) {
    sh.data = ctx.alloc_shared(kElems * sizeof(double));
    sh.sum = ctx.alloc_shared(sizeof(double));
    ctx.write<double>(sh.sum, 0.0);
  }
  ctx.barrier(bar);  // publish the allocations

  ctx.begin_measurement();
  // Each thread fills its slice of the shared array (ordinary region:
  // page-granularity consistency via twins/diffs at the barrier).
  double local = 0.0;
  rt::for_each_write_span<double>(
      ctx, sh.data + lo * sizeof(double), chunk,
      [&](std::span<double> out, std::size_t at) {
        for (std::size_t i = 0; i < out.size(); ++i) {
          out[i] = static_cast<double>(lo + at + i);
          local += out[i];
        }
      });
  ctx.charge_flops(static_cast<double>(chunk));
  ctx.charge_mem_ops(0, chunk);

  // Mutex-protected accumulation (consistency region: the stores are
  // propagated fine-grain with the lock, RegC-style).
  ctx.lock(mtx);
  ctx.write<double>(sh.sum, ctx.read<double>(sh.sum) + local);
  ctx.unlock(mtx);

  ctx.barrier(bar);  // global consistency point
  ctx.end_measurement();
}

void run_on(sam::rt::Runtime& runtime) {
  Shared sh;
  const auto mtx = runtime.create_mutex();
  const auto bar = runtime.create_barrier(kThreads);
  runtime.parallel_run(kThreads,
                       [&](sam::rt::ThreadCtx& ctx) { body(ctx, sh, mtx, bar); });

  const double sum = runtime.read_global_array<double>(sh.sum, 1)[0];
  const double expect = static_cast<double>(kElems) * (kElems - 1) / 2.0;
  std::printf("[%s]\n", runtime.name().c_str());
  std::printf("  shared sum        = %.0f (expected %.0f) %s\n", sum, expect,
              sum == expect ? "OK" : "MISMATCH");
  std::printf("  elapsed (virtual) = %.3f ms\n", runtime.elapsed_seconds() * 1e3);
  std::printf("  mean compute      = %.3f ms\n", runtime.mean_compute_seconds() * 1e3);
  std::printf("  mean sync         = %.3f ms\n\n", runtime.mean_sync_seconds() * 1e3);
}

}  // namespace

int main() {
  std::printf("Samhita quickstart: %u threads filling %zu shared doubles\n\n", kThreads,
              kElems);
  {
    sam::core::SamhitaRuntime samhita;  // the DSM over the simulated cluster
    run_on(samhita);
    std::printf("  (network: %llu messages, %.2f MiB moved)\n\n",
                static_cast<unsigned long long>(samhita.network_messages()),
                static_cast<double>(samhita.network_bytes()) / (1 << 20));
  }
  {
    sam::smp::SmpRuntime pthreads;  // the cache-coherent baseline
    run_on(pthreads);
  }
  return 0;
}
