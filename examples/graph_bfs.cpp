// Graph BFS example: irregular access over virtual shared memory.
//
// Random accesses into the edge and distance arrays are the stress case for
// page-granular software caching — the protocol statistics below show the
// cost of irregularity (compare with matrix_multiply's 99%+ hit rate).
//
// Usage: ./build/examples/graph_bfs [--vertices=2048] [--degree=8]
//                                   [--threads=8] [--seed=1]
#include <cstdio>

#include "apps/bfs.hpp"
#include "core/report.hpp"
#include "core/samhita_runtime.hpp"
#include "util/arg_parser.hpp"

int main(int argc, char** argv) {
  using namespace sam;
  util::ArgParser args(argc, argv);
  apps::BfsParams p;
  p.vertices = static_cast<std::uint32_t>(args.get_int("vertices", 2048));
  p.avg_degree = static_cast<std::uint32_t>(args.get_int("degree", 8));
  p.threads = static_cast<std::uint32_t>(args.get_int("threads", 8));
  p.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::printf("BFS: %u vertices, avg degree %u, %u threads\n\n", p.vertices,
              p.avg_degree, p.threads);

  core::SamhitaRuntime runtime;
  const auto r = apps::run_bfs(runtime, p);
  const auto ref = apps::bfs_reference(p);

  std::printf("reached %llu/%u vertices in %u levels (distance sum %llu)\n",
              static_cast<unsigned long long>(r.reached), p.vertices, r.levels,
              static_cast<unsigned long long>(r.distance_sum));
  std::printf("reference: reached %llu, levels %u, distance sum %llu\n\n",
              static_cast<unsigned long long>(ref.reached), ref.levels,
              static_cast<unsigned long long>(ref.distance_sum));

  std::printf("%s\n", core::format_report(runtime).c_str());

  const bool ok = r.reached == ref.reached && r.distance_sum == ref.distance_sum &&
                  r.levels == ref.levels;
  std::printf("verification: %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
