// Producer/consumer over virtual shared memory: a bounded ring buffer in the
// global address space, coordinated with Samhita mutexes and condition
// variables. Exercises the full RegC consistency-region machinery — every
// queue operation's stores travel as fine-grain update sets with the lock.
//
// Usage: ./build/examples/producer_consumer [--items=200] [--capacity=8]
//                                           [--producers=2] [--consumers=2]
#include <cstdio>
#include <vector>

#include "core/samhita_runtime.hpp"
#include "util/arg_parser.hpp"

namespace {

using namespace sam;

/// Ring-buffer layout in the global address space (all doubles for
/// simplicity: head, tail, count, then the slots).
struct Queue {
  rt::Addr base = 0;
  std::size_t capacity = 0;

  rt::Addr head() const { return base; }
  rt::Addr tail() const { return base + 8; }
  rt::Addr count() const { return base + 16; }
  rt::Addr slot(std::uint64_t i) const { return base + 24 + (i % capacity) * 8; }
};

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const std::int64_t items = args.get_int("items", 200);
  const std::size_t capacity = static_cast<std::size_t>(args.get_int("capacity", 8));
  const std::uint32_t producers = static_cast<std::uint32_t>(args.get_int("producers", 2));
  const std::uint32_t consumers = static_cast<std::uint32_t>(args.get_int("consumers", 2));
  const std::uint32_t threads = producers + consumers;

  std::printf("producer/consumer: %lld items, capacity %zu, %u producers, %u consumers\n",
              static_cast<long long>(items), capacity, producers, consumers);

  core::SamhitaRuntime runtime;
  const auto mtx = runtime.create_mutex();
  const auto not_full = runtime.create_cond();
  const auto not_empty = runtime.create_cond();
  const auto bar = runtime.create_barrier(threads);

  Queue q;
  q.capacity = capacity;
  double consumed_sum = 0;
  std::int64_t consumed_count = 0;

  runtime.parallel_run(threads, [&](rt::ThreadCtx& ctx) {
    const bool producer = ctx.index() < producers;
    if (ctx.index() == 0) {
      q.base = ctx.alloc_shared(24 + capacity * 8);
      ctx.write<double>(q.head(), 0);
      ctx.write<double>(q.tail(), 0);
      ctx.write<double>(q.count(), 0);
    }
    ctx.barrier(bar);
    ctx.begin_measurement();

    if (producer) {
      // Producers split the item range; item values are 1..items.
      for (std::int64_t v = ctx.index() + 1; v <= items; v += producers) {
        ctx.lock(mtx);
        while (ctx.read<double>(q.count()) >= static_cast<double>(capacity)) {
          ctx.cond_wait(not_full, mtx);
        }
        const auto tail = static_cast<std::uint64_t>(ctx.read<double>(q.tail()));
        ctx.write<double>(q.slot(tail), static_cast<double>(v));
        ctx.write<double>(q.tail(), static_cast<double>(tail + 1));
        ctx.write<double>(q.count(), ctx.read<double>(q.count()) + 1);
        ctx.cond_signal(not_empty);
        ctx.unlock(mtx);
      }
      // One poison pill per consumer, from producer 0.
      if (ctx.index() == 0) {
        for (std::uint32_t c = 0; c < consumers; ++c) {
          ctx.lock(mtx);
          while (ctx.read<double>(q.count()) >= static_cast<double>(capacity)) {
            ctx.cond_wait(not_full, mtx);
          }
          const auto tail = static_cast<std::uint64_t>(ctx.read<double>(q.tail()));
          ctx.write<double>(q.slot(tail), -1.0);
          ctx.write<double>(q.tail(), static_cast<double>(tail + 1));
          ctx.write<double>(q.count(), ctx.read<double>(q.count()) + 1);
          ctx.cond_signal(not_empty);
          ctx.unlock(mtx);
        }
      }
    } else {
      for (;;) {
        ctx.lock(mtx);
        while (ctx.read<double>(q.count()) == 0.0) {
          ctx.cond_wait(not_empty, mtx);
        }
        const auto head = static_cast<std::uint64_t>(ctx.read<double>(q.head()));
        const double v = ctx.read<double>(q.slot(head));
        ctx.write<double>(q.head(), static_cast<double>(head + 1));
        ctx.write<double>(q.count(), ctx.read<double>(q.count()) - 1);
        ctx.cond_signal(not_full);
        ctx.unlock(mtx);
        if (v < 0) break;  // poison pill
        consumed_sum += v;
        ++consumed_count;
        ctx.charge_flops(50);  // pretend to process the item
      }
    }
  });

  const double expect = static_cast<double>(items) * (items + 1) / 2.0;
  std::printf("consumed %lld items, sum %.0f (expected %.0f)\n",
              static_cast<long long>(consumed_count), consumed_sum, expect);
  std::printf("virtual elapsed: %.3f ms\n", runtime.elapsed_seconds() * 1e3);
  const bool ok = consumed_count == items && consumed_sum == expect;
  std::printf("verification: %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
