// Producer/consumer over virtual shared memory: a bounded ring buffer in the
// global address space, coordinated with Samhita mutexes and condition
// variables. Exercises the full RegC consistency-region machinery — every
// queue operation's stores travel as fine-grain update sets with the lock.
// Written entirely against the sam::api facade.
//
// Usage: ./build/examples/producer_consumer [--items=200] [--capacity=8]
//                                           [--producers=2] [--consumers=2]
#include <cstdio>
#include <memory>
#include <vector>

#include "api/sam_api.hpp"
#include "util/arg_parser.hpp"

namespace {

using namespace sam::api;

/// Ring-buffer layout in the global address space (all doubles for
/// simplicity: head, tail, count, then the slots).
struct Queue {
  Addr base = 0;
  std::size_t capacity = 0;

  Addr head() const { return base; }
  Addr tail() const { return base + 8; }
  Addr count() const { return base + 16; }
  Addr slot(std::uint64_t i) const { return base + 24 + (i % capacity) * 8; }
};

}  // namespace

int main(int argc, char** argv) {
  sam::util::ArgParser args(argc, argv);
  const std::int64_t items = args.get_int("items", 200);
  const std::size_t capacity = static_cast<std::size_t>(args.get_int("capacity", 8));
  const std::uint32_t producers =
      static_cast<std::uint32_t>(args.get_int("producers", 2));
  const std::uint32_t consumers =
      static_cast<std::uint32_t>(args.get_int("consumers", 2));
  const std::uint32_t threads = producers + consumers;

  std::printf("producer/consumer: %lld items, capacity %zu, %u producers, %u consumers\n",
              static_cast<long long>(items), capacity, producers, consumers);

  auto runtime = make_samhita_runtime();
  const MutexId mtx = sam_mutex_init(*runtime);
  const CondId not_full = sam_cond_init(*runtime);
  const CondId not_empty = sam_cond_init(*runtime);
  const BarrierId bar = sam_barrier_init(*runtime, threads);

  Queue q;
  q.capacity = capacity;
  double consumed_sum = 0;
  std::int64_t consumed_count = 0;

  sam_threads(*runtime, threads, [&](ThreadCtx& ctx) {
    const bool producer = sam_thread_index(ctx) < producers;
    if (sam_thread_index(ctx) == 0) {
      q.base = sam_alloc_shared(ctx, 24 + capacity * 8);
      sam_write<double>(ctx, q.head(), 0);
      sam_write<double>(ctx, q.tail(), 0);
      sam_write<double>(ctx, q.count(), 0);
    }
    sam_barrier(ctx, bar);
    sam_begin_measurement(ctx);

    if (producer) {
      // Producers split the item range; item values are 1..items.
      for (std::int64_t v = sam_thread_index(ctx) + 1; v <= items; v += producers) {
        sam_lock(ctx, mtx);
        while (sam_read<double>(ctx, q.count()) >= static_cast<double>(capacity)) {
          sam_cond_wait(ctx, not_full, mtx);
        }
        const auto tail = static_cast<std::uint64_t>(sam_read<double>(ctx, q.tail()));
        sam_write<double>(ctx, q.slot(tail), static_cast<double>(v));
        sam_write<double>(ctx, q.tail(), static_cast<double>(tail + 1));
        sam_write<double>(ctx, q.count(), sam_read<double>(ctx, q.count()) + 1);
        sam_cond_signal(ctx, not_empty);
        sam_unlock(ctx, mtx);
      }
      // One poison pill per consumer, from producer 0.
      if (sam_thread_index(ctx) == 0) {
        for (std::uint32_t c = 0; c < consumers; ++c) {
          sam_lock(ctx, mtx);
          while (sam_read<double>(ctx, q.count()) >= static_cast<double>(capacity)) {
            sam_cond_wait(ctx, not_full, mtx);
          }
          const auto tail = static_cast<std::uint64_t>(sam_read<double>(ctx, q.tail()));
          sam_write<double>(ctx, q.slot(tail), -1.0);
          sam_write<double>(ctx, q.tail(), static_cast<double>(tail + 1));
          sam_write<double>(ctx, q.count(), sam_read<double>(ctx, q.count()) + 1);
          sam_cond_signal(ctx, not_empty);
          sam_unlock(ctx, mtx);
        }
      }
    } else {
      for (;;) {
        sam_lock(ctx, mtx);
        while (sam_read<double>(ctx, q.count()) == 0.0) {
          sam_cond_wait(ctx, not_empty, mtx);
        }
        const auto head = static_cast<std::uint64_t>(sam_read<double>(ctx, q.head()));
        const double v = sam_read<double>(ctx, q.slot(head));
        sam_write<double>(ctx, q.head(), static_cast<double>(head + 1));
        sam_write<double>(ctx, q.count(), sam_read<double>(ctx, q.count()) - 1);
        sam_cond_signal(ctx, not_full);
        sam_unlock(ctx, mtx);
        if (v < 0) break;  // poison pill
        consumed_sum += v;
        ++consumed_count;
        sam_charge_flops(ctx, 50);  // pretend to process the item
      }
    }
  });

  const double expect = static_cast<double>(items) * (items + 1) / 2.0;
  std::printf("consumed %lld items, sum %.0f (expected %.0f)\n",
              static_cast<long long>(consumed_count), consumed_sum, expect);
  std::printf("virtual elapsed: %.3f ms\n", sam_elapsed_seconds(*runtime) * 1e3);
  const bool ok = consumed_count == items && consumed_sum == expect;
  std::printf("verification: %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
