// The paper's target platform (Fig. 1): a heterogeneous node where the host
// CPU runs the memory server and manager, and compute threads execute on a
// many-core coprocessor across the PCI Express bus. This example configures
// that topology and compares the three SCL transports — InfiniBand verbs
// (the paper's pessimistic testbed), a verbs proxy over PCIe, and the §V
// future-work SCIF layer.
//
// Usage: ./build/examples/heterogeneous_node [--threads=16] [--M=100]
#include <cstdio>

#include "apps/microbench.hpp"
#include "core/samhita_runtime.hpp"
#include "util/arg_parser.hpp"

int main(int argc, char** argv) {
  using namespace sam;
  util::ArgParser args(argc, argv);
  const auto threads = static_cast<std::uint32_t>(args.get_int("threads", 16));
  const int M = static_cast<int>(args.get_int("M", 100));

  std::printf("heterogeneous node: host (memory server + manager) + %u-core "
              "coprocessor\n\n", threads);
  std::printf("%-12s %14s %14s %12s %12s\n", "transport", "compute(ms)", "sync(ms)",
              "messages", "MiB moved");

  for (const char* net : {"ib", "pcie", "scif"}) {
    core::SamhitaConfig cfg;
    cfg.network = net;
    cfg.compute_nodes = 1;    // the coprocessor card
    cfg.cores_per_node = 61;  // Knights-Corner-class many-core device

    apps::MicrobenchParams p;
    p.threads = threads;
    p.N = 10;
    p.M = M;
    p.S = 2;
    p.B = 256;
    p.alloc = apps::MicrobenchAlloc::kGlobal;

    core::SamhitaRuntime runtime(cfg);
    const auto r = apps::run_microbench(runtime, p);
    std::printf("%-12s %14.3f %14.3f %12llu %12.2f\n", net,
                r.mean_compute_seconds * 1e3, r.mean_sync_seconds * 1e3,
                static_cast<unsigned long long>(runtime.network_messages()),
                static_cast<double>(runtime.network_bytes()) / (1 << 20));
  }
  std::printf("\nSCIF eliminates the verbs-proxy overhead on every PCIe crossing — the\n"
              "paper's §V prediction, quantified.\n");
  return 0;
}
